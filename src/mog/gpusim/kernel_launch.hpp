// Kernel launch framework: grid/block decomposition, per-warp execution,
// shared-memory arena, and counter aggregation.
//
// A kernel is a callable `void(BlockCtx&)`. Inside, `blk.parallel(fn)` runs
// `fn(WarpCtx&)` once per warp of the block; consecutive parallel() sections
// are separated by an implicit __syncthreads() (the simulator executes warps
// of a section sequentially, so any cross-warp shared-memory communication
// must straddle a section boundary — the same discipline real CUDA code
// needs around barriers).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "mog/gpusim/coalescer.hpp"
#include "mog/gpusim/device_memory.hpp"
#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/fault_hooks.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/warp.hpp"

namespace mog::gpusim {

struct LaunchConfig {
  std::int64_t num_threads = 0;  ///< grid size in threads (≥ 1)
  int threads_per_block = 128;
};

class BlockCtx {
 public:
  BlockCtx(std::int64_t block_id, int threads_in_block, int threads_per_block,
           KernelStats& stats, Coalescer& coalescer,
           std::vector<std::byte>& shared_arena);

  std::int64_t block_id() const { return block_id_; }
  int threads_per_block() const { return threads_per_block_; }
  int threads_in_block() const { return threads_in_block_; }
  int num_warps() const {
    return (threads_in_block_ + kWarpSize - 1) / kWarpSize;
  }

  /// Allocate a block-scope shared array (8-byte aligned). Counts toward the
  /// block's shared-memory footprint for the occupancy calculation. The
  /// arena is pre-sized to the SM's physical capacity so earlier SharedSpan
  /// pointers never dangle; over-allocation is a kernel bug and throws.
  template <typename T>
  SharedSpan<T> shared_alloc(std::size_t count) {
    const std::size_t offset = (shared_used_ + 7) / 8 * 8;
    const std::size_t bytes = count * sizeof(T);
    MOG_CHECK(offset + bytes <= shared_arena_.size(),
              "kernel exceeds per-SM shared memory capacity");
    shared_used_ = offset + bytes;
    if (shared_used_ > stats_.shared_bytes_per_block)
      stats_.shared_bytes_per_block = shared_used_;
    return SharedSpan<T>{reinterpret_cast<T*>(shared_arena_.data() + offset),
                         static_cast<std::uint32_t>(offset), count};
  }

  /// Run `fn(WarpCtx&)` for every warp of the block. Implicit barrier
  /// between consecutive parallel() calls.
  template <typename Fn>
  void parallel(Fn&& fn) {
    const int warps = num_warps();
    for (int w = 0; w < warps; ++w) {
      const int lanes = std::min<int>(kWarpSize,
                                      threads_in_block_ - w * kWarpSize);
      RegTracker regs;
      ExecEnv env{&stats_, &regs, &coalescer_, 0xffffffffu};
      coalescer_.begin_warp();
      exec_env() = &env;
      {
        WarpCtx warp{env, block_id_ * threads_per_block_ +
                              static_cast<std::int64_t>(w) * kWarpSize,
                     lanes};
        fn(warp);
      }
      exec_env() = nullptr;
      ++stats_.num_warps;
      if (regs.peak_words > peak_reg_words_) peak_reg_words_ = regs.peak_words;
    }
  }

  int peak_reg_words() const { return peak_reg_words_; }

 private:
  std::int64_t block_id_;
  int threads_in_block_;
  int threads_per_block_;
  KernelStats& stats_;
  Coalescer& coalescer_;
  std::vector<std::byte>& shared_arena_;
  std::size_t shared_used_ = 0;
  int peak_reg_words_ = 0;
};

/// The simulated device: spec + global memory + launch entry point.
class Device {
 public:
  explicit Device(DeviceSpec spec = {});

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemory& memory() { return memory_; }

  /// Install a fault-injection hook (non-owning; nullptr restores fault-free
  /// operation). The hook is consulted by launch() and the hooked transfer
  /// members below — the plain copy_to_device/copy_from_device free
  /// functions stay fault-free, so model initialization and recovery
  /// (checkpoint upload, rollback) never fail.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// Install a counter export hook (non-owning; nullptr detaches). The sink
  /// observes the finalized KernelStats of every successful launch — this is
  /// how the telemetry layer aggregates per-launch counters without the
  /// pipeline having to forward them by hand.
  void set_stats_sink(StatsSink* sink) { stats_sink_ = sink; }
  StatsSink* stats_sink() const { return stats_sink_; }

  /// Hooked host->device DMA transfer: may throw TransferError, and the
  /// installed hook may corrupt the delivered payload in place.
  template <typename T>
  std::size_t upload(DevSpan<T> dst, const T* src, std::size_t count) {
    if (fault_hook_)
      fault_hook_->before_transfer(TransferDir::kHostToDevice,
                                   count * sizeof(T));
    const std::size_t bytes = copy_to_device(dst, src, count);
    if (fault_hook_)
      fault_hook_->after_transfer(TransferDir::kHostToDevice, dst.data, bytes);
    return bytes;
  }

  /// Hooked device->host DMA transfer; mirror of upload().
  template <typename T>
  std::size_t download(T* dst, DevSpan<T> src, std::size_t count) {
    if (fault_hook_)
      fault_hook_->before_transfer(TransferDir::kDeviceToHost,
                                   count * sizeof(T));
    const std::size_t bytes = copy_from_device(dst, src, count);
    if (fault_hook_)
      fault_hook_->after_transfer(TransferDir::kDeviceToHost, dst, bytes);
    return bytes;
  }

  /// Execute a kernel over the whole grid, returning its profiler counters.
  /// Functional side effects land in device memory synchronously. With a
  /// fault hook installed the launch may throw LaunchError *before* any
  /// block runs (device state is untouched, mirroring a CUDA launch
  /// failure).
  template <typename KernelFn>
  KernelStats launch(const LaunchConfig& config, KernelFn&& kernel) {
    validate(config);
    if (fault_hook_) fault_hook_->before_launch();
    KernelStats stats;
    stats.threads_per_block = config.threads_per_block;

    Coalescer coalescer{spec_, kEffectiveL1SegmentsPerWarp};
    const std::int64_t blocks =
        (config.num_threads + config.threads_per_block - 1) /
        config.threads_per_block;
    stats.num_blocks = static_cast<std::uint64_t>(blocks);

    int peak_reg_words = 0;
    for (std::int64_t b = 0; b < blocks; ++b) {
      const int threads_in_block = static_cast<int>(
          std::min<std::int64_t>(config.threads_per_block,
                                 config.num_threads -
                                     b * config.threads_per_block));
      BlockCtx blk{b, threads_in_block, config.threads_per_block, stats,
                   coalescer, shared_arena_};
      kernel(blk);
      if (blk.peak_reg_words() > peak_reg_words)
        peak_reg_words = blk.peak_reg_words();
    }

    stats.regs_per_thread = std::min(
        static_cast<int>(peak_reg_words * kRegisterPressureScale + 0.5) +
            kAbiRegisterWords,
        spec_.max_registers_per_thread);
    if (stats_sink_ != nullptr) stats_sink_->on_kernel_launch(stats);
    return stats;
  }

 private:
  void validate(const LaunchConfig& config) const;

  DeviceSpec spec_;
  DeviceMemory memory_;
  std::vector<std::byte> shared_arena_;
  FaultHook* fault_hook_ = nullptr;
  StatsSink* stats_sink_ = nullptr;
};

}  // namespace mog::gpusim
