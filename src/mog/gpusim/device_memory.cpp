#include "mog/gpusim/device_memory.hpp"

#include "mog/common/strutil.hpp"

namespace mog::gpusim {

DeviceMemory::DeviceMemory(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void* DeviceMemory::raw_alloc(std::size_t bytes) {
  MOG_CHECK(bytes > 0, "zero-byte device allocation");
  buffers_.push_back(std::make_unique<std::byte[]>(bytes));
  return buffers_.back().get();
}

std::uint64_t DeviceMemory::assign_addr(std::size_t bytes) {
  const std::uint64_t addr = next_addr_;
  const std::size_t padded = (bytes + kAlign - 1) / kAlign * kAlign;
  if (bytes_allocated() + padded > capacity_) {
    throw Error{strprintf(
        "simulated device out of memory: %zu in use, %zu requested, %zu total",
        bytes_allocated(), padded, capacity_)};
  }
  next_addr_ += padded;
  return addr;
}

}  // namespace mog::gpusim
