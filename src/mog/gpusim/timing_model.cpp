#include "mog/gpusim/timing_model.hpp"

#include <algorithm>

#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

KernelTiming kernel_time(const KernelStats& stats, const Occupancy& occ,
                         const DeviceSpec& spec) {
  KernelTiming t;
  const double clock = spec.clock_hz();
  const double sms = static_cast<double>(spec.num_sms);

  const double issue_utilization =
      occ.achieved / (occ.achieved + kIssueSatOccupancy);
  t.compute_seconds = static_cast<double>(stats.issue_cycles) / sms /
                      (kSustainedIssueEfficiency * issue_utilization) / clock;
  t.shared_seconds = static_cast<double>(stats.shared_cycles) / sms / clock;

  t.bandwidth_floor_seconds =
      static_cast<double>(stats.bytes_transferred()) /
          (spec.dram_bandwidth_gbps * kMemSystemUtilization * 1e9) +
      static_cast<double>(stats.dram_page_switches) * kPageSwitchCycles /
          clock;

  const double resident_warps =
      std::max(1.0, occ.achieved * spec.max_warps_per_sm);
  t.latency_seconds = static_cast<double>(stats.total_transactions()) *
                      kDramLatencyCycles /
                      (sms * resident_warps * kMemParallelismPerWarp) / clock;

  const double hide = occ.achieved / (occ.achieved + kHideHalfOccupancy);
  t.exposed_latency_seconds = t.latency_seconds * (1.0 - hide);

  t.launch_overhead_seconds = kKernelLaunchSeconds;

  const double sm_bound =
      t.compute_seconds + t.shared_seconds + t.exposed_latency_seconds;
  t.bound_by =
      sm_bound >= t.bandwidth_floor_seconds ? "compute" : "bandwidth";
  t.total_seconds = std::max(sm_bound, t.bandwidth_floor_seconds) +
                    t.launch_overhead_seconds;
  return t;
}

}  // namespace mog::gpusim
