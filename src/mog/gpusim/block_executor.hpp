// Persistent host worker pool that executes a launch's blocks in parallel.
//
// CUDA blocks are independent by construction — no shared memory spans
// blocks and __syncthreads() never crosses a block boundary — so the
// simulator's per-block work is embarrassingly parallel on the host. The
// pool follows the generation-counted barrier design proven in
// mog/cpu/parallel_mog.cpp: workers persist across launches (no per-launch
// thread creation), the launching thread participates as worker 0, and a
// condition-variable generation bump dispatches each run.
//
// Blocks are claimed dynamically off a shared atomic cursor. That keeps the
// slowest-block tail short and is safe for determinism because the launcher
// gives every worker private accumulation state and folds it with
// commutative, order-independent reductions (integer sums / maxes plus a
// block-ordered DRAM-row replay — see Device::launch); which worker ran
// which block can never show up in the results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mog::gpusim {

class BlockExecutor {
 public:
  /// `fn(block_id, worker)` with worker in [0, num_threads).
  using BlockFn = std::function<void(std::int64_t, int)>;

  /// `num_threads` must already be resolved (see resolved_executor_threads);
  /// num_threads - 1 persistent workers are spawned.
  explicit BlockExecutor(int num_threads);
  ~BlockExecutor();

  BlockExecutor(const BlockExecutor&) = delete;
  BlockExecutor& operator=(const BlockExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run `fn` once for every block in [0, num_blocks), spread across the
  /// pool; returns when all claimed blocks have finished. If any invocation
  /// threw, the remaining unclaimed blocks are skipped and, after every
  /// worker quiesces, the exception of the lowest-numbered failing block is
  /// rethrown on the calling thread. The pool stays usable afterwards.
  void run(std::int64_t num_blocks, const BlockFn& fn);

 private:
  void worker_loop(int worker);
  void drain(int worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutting_down_ = false;

  // Per-run dispatch state; written by run() before the generation bump and
  // read by workers only after observing the new generation under mu_.
  const BlockFn* fn_ = nullptr;
  std::int64_t num_blocks_ = 0;
  std::atomic<std::int64_t> next_block_{0};

  // First failure (by block id) wins; failed_ short-circuits further claims.
  std::atomic<bool> failed_{false};
  std::mutex err_mu_;
  std::int64_t first_error_block_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace mog::gpusim
