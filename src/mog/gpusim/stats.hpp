// Profiler counters collected during simulated kernel execution.
//
// Metric definitions deliberately match the Nvidia Visual Profiler metrics
// the paper reports:
//   memory access efficiency = bytes requested / bytes transferred
//   branch efficiency        = non-divergent branches / executed branches
//   SM occupancy             = resident threads per SM / max threads per SM
#pragma once

#include <algorithm>
#include <cstdint>

namespace mog::gpusim {

struct KernelStats {
  // --- global memory -----------------------------------------------------
  std::uint64_t load_instructions = 0;    ///< warp-level load instructions
  std::uint64_t store_instructions = 0;
  std::uint64_t load_transactions = 0;    ///< 128 B segments fetched
  std::uint64_t store_transactions = 0;   ///< 32 B segments written
  std::uint64_t rmw_transactions = 0;     ///< ECC read-modify-write reads
  std::uint64_t bytes_requested_load = 0;
  std::uint64_t bytes_requested_store = 0;
  std::uint64_t bytes_transferred_load = 0;
  std::uint64_t bytes_transferred_store = 0;
  std::uint64_t dram_page_switches = 0;   ///< row-locality events

  // --- branches -----------------------------------------------------------
  std::uint64_t branches_executed = 0;
  std::uint64_t branches_divergent = 0;

  // --- compute ------------------------------------------------------------
  std::uint64_t issue_cycles = 0;         ///< warp-instruction issue cycles
  std::uint64_t warp_instructions = 0;

  // --- shared memory ------------------------------------------------------
  std::uint64_t shared_accesses = 0;      ///< warp-level shared ld/st
  std::uint64_t shared_cycles = 0;        ///< incl. bank-conflict replays
  std::uint64_t shared_bytes_per_block = 0;

  // --- launch shape / resources -------------------------------------------
  int regs_per_thread = 0;                ///< peak across warps (+ABI)
  int threads_per_block = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t num_warps = 0;

  // --- derived -------------------------------------------------------------
  std::uint64_t total_transactions() const {
    return load_transactions + store_transactions + rmw_transactions;
  }
  std::uint64_t bytes_transferred() const {
    return bytes_transferred_load + bytes_transferred_store;
  }
  std::uint64_t bytes_requested() const {
    return bytes_requested_load + bytes_requested_store;
  }
  double memory_access_efficiency() const {
    const auto t = bytes_transferred();
    if (t == 0) return 1.0;
    // L1 hits can push requested bytes past transferred bytes; the profiler
    // metric saturates at 100%.
    return std::min(1.0, static_cast<double>(bytes_requested()) /
                             static_cast<double>(t));
  }
  double branch_efficiency() const {
    return branches_executed == 0
               ? 1.0
               : 1.0 - static_cast<double>(branches_divergent) /
                           static_cast<double>(branches_executed);
  }

  /// Accumulate another launch's counters (launch shape fields must match;
  /// regs take the max so a warm-up launch cannot under-report).
  KernelStats& operator+=(const KernelStats& other) {
    load_instructions += other.load_instructions;
    store_instructions += other.store_instructions;
    load_transactions += other.load_transactions;
    store_transactions += other.store_transactions;
    rmw_transactions += other.rmw_transactions;
    bytes_requested_load += other.bytes_requested_load;
    bytes_requested_store += other.bytes_requested_store;
    bytes_transferred_load += other.bytes_transferred_load;
    bytes_transferred_store += other.bytes_transferred_store;
    dram_page_switches += other.dram_page_switches;
    branches_executed += other.branches_executed;
    branches_divergent += other.branches_divergent;
    issue_cycles += other.issue_cycles;
    warp_instructions += other.warp_instructions;
    shared_accesses += other.shared_accesses;
    shared_cycles += other.shared_cycles;
    shared_bytes_per_block =
        other.shared_bytes_per_block > shared_bytes_per_block
            ? other.shared_bytes_per_block
            : shared_bytes_per_block;
    regs_per_thread = other.regs_per_thread > regs_per_thread
                          ? other.regs_per_thread
                          : regs_per_thread;
    threads_per_block = other.threads_per_block;
    num_blocks += other.num_blocks;
    num_warps += other.num_warps;
    return *this;
  }

  /// Per-launch average after accumulating n launches (resource fields are
  /// already per-launch and pass through unchanged).
  KernelStats averaged_over(std::uint64_t n) const {
    KernelStats s = *this;
    if (n <= 1) return s;
    s.load_instructions /= n;
    s.store_instructions /= n;
    s.load_transactions /= n;
    s.store_transactions /= n;
    s.rmw_transactions /= n;
    s.bytes_requested_load /= n;
    s.bytes_requested_store /= n;
    s.bytes_transferred_load /= n;
    s.bytes_transferred_store /= n;
    s.dram_page_switches /= n;
    s.branches_executed /= n;
    s.branches_divergent /= n;
    s.issue_cycles /= n;
    s.warp_instructions /= n;
    s.shared_accesses /= n;
    s.shared_cycles /= n;
    s.num_blocks /= n;
    s.num_warps /= n;
    return s;
  }
};

}  // namespace mog::gpusim
