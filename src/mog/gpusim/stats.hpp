// Profiler counters collected during simulated kernel execution.
//
// Metric definitions deliberately match the Nvidia Visual Profiler metrics
// the paper reports:
//   memory access efficiency = bytes requested / bytes transferred
//   branch efficiency        = non-divergent branches / executed branches
//   SM occupancy             = resident threads per SM / max threads per SM
#pragma once

#include <algorithm>
#include <cstdint>

#include "mog/common/error.hpp"

namespace mog::gpusim {

struct KernelStats {
  // --- global memory -----------------------------------------------------
  std::uint64_t load_instructions = 0;    ///< warp-level load instructions
  std::uint64_t store_instructions = 0;
  std::uint64_t load_transactions = 0;    ///< 128 B segments fetched
  std::uint64_t store_transactions = 0;   ///< 32 B segments written
  std::uint64_t rmw_transactions = 0;     ///< ECC read-modify-write reads
  std::uint64_t bytes_requested_load = 0;
  std::uint64_t bytes_requested_store = 0;
  std::uint64_t bytes_transferred_load = 0;
  std::uint64_t bytes_transferred_store = 0;
  std::uint64_t dram_page_switches = 0;   ///< row-locality events

  // --- branches -----------------------------------------------------------
  std::uint64_t branches_executed = 0;
  std::uint64_t branches_divergent = 0;

  // --- compute ------------------------------------------------------------
  std::uint64_t issue_cycles = 0;         ///< warp-instruction issue cycles
  std::uint64_t warp_instructions = 0;

  // --- shared memory ------------------------------------------------------
  std::uint64_t shared_accesses = 0;      ///< warp-level shared ld/st
  std::uint64_t shared_cycles = 0;        ///< incl. bank-conflict replays
  std::uint64_t shared_bytes_per_block = 0;

  // --- launch shape / resources -------------------------------------------
  int regs_per_thread = 0;                ///< peak across warps (+ABI)
  int threads_per_block = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t num_warps = 0;

  // --- derived -------------------------------------------------------------
  std::uint64_t total_transactions() const {
    return load_transactions + store_transactions + rmw_transactions;
  }
  std::uint64_t bytes_transferred() const {
    return bytes_transferred_load + bytes_transferred_store;
  }
  std::uint64_t bytes_requested() const {
    return bytes_requested_load + bytes_requested_store;
  }
  double memory_access_efficiency() const {
    const auto t = bytes_transferred();
    if (t == 0) return 1.0;
    // L1 hits can push requested bytes past transferred bytes; the profiler
    // metric saturates at 100%.
    return std::min(1.0, static_cast<double>(bytes_requested()) /
                             static_cast<double>(t));
  }
  double branch_efficiency() const {
    return branches_executed == 0
               ? 1.0
               : 1.0 - static_cast<double>(branches_divergent) /
                           static_cast<double>(branches_executed);
  }

  /// Accumulate another launch's counters (launch shape fields must match;
  /// regs take the max so a warm-up launch cannot under-report). Mixing
  /// launches of different block shapes is an error in every build type —
  /// the per-launch resource fields (and the occupancy derived from them)
  /// would silently describe neither launch.
  KernelStats& operator+=(const KernelStats& other) {
    MOG_CHECK(threads_per_block == 0 || other.threads_per_block == 0 ||
                  threads_per_block == other.threads_per_block,
              "accumulating KernelStats across mismatched launch shapes "
              "(threads_per_block differs)");
    load_instructions += other.load_instructions;
    store_instructions += other.store_instructions;
    load_transactions += other.load_transactions;
    store_transactions += other.store_transactions;
    rmw_transactions += other.rmw_transactions;
    bytes_requested_load += other.bytes_requested_load;
    bytes_requested_store += other.bytes_requested_store;
    bytes_transferred_load += other.bytes_transferred_load;
    bytes_transferred_store += other.bytes_transferred_store;
    dram_page_switches += other.dram_page_switches;
    branches_executed += other.branches_executed;
    branches_divergent += other.branches_divergent;
    issue_cycles += other.issue_cycles;
    warp_instructions += other.warp_instructions;
    shared_accesses += other.shared_accesses;
    shared_cycles += other.shared_cycles;
    shared_bytes_per_block =
        other.shared_bytes_per_block > shared_bytes_per_block
            ? other.shared_bytes_per_block
            : shared_bytes_per_block;
    regs_per_thread = other.regs_per_thread > regs_per_thread
                          ? other.regs_per_thread
                          : regs_per_thread;
    if (other.threads_per_block != 0)
      threads_per_block = other.threads_per_block;
    num_blocks += other.num_blocks;
    num_warps += other.num_warps;
    return *this;
  }

  /// Counter-wise difference against an earlier snapshot of the same
  /// accumulator: `after.counters_since(before)` is what ran in between.
  /// Resource fields (regs, threads_per_block, shared bytes) are per-launch
  /// properties, not counters — they pass through from `*this`. Used by the
  /// per-block stats seam (Device snapshots the worker accumulator around
  /// each block).
  KernelStats counters_since(const KernelStats& before) const {
    KernelStats d = *this;
    d.load_instructions -= before.load_instructions;
    d.store_instructions -= before.store_instructions;
    d.load_transactions -= before.load_transactions;
    d.store_transactions -= before.store_transactions;
    d.rmw_transactions -= before.rmw_transactions;
    d.bytes_requested_load -= before.bytes_requested_load;
    d.bytes_requested_store -= before.bytes_requested_store;
    d.bytes_transferred_load -= before.bytes_transferred_load;
    d.bytes_transferred_store -= before.bytes_transferred_store;
    d.dram_page_switches -= before.dram_page_switches;
    d.branches_executed -= before.branches_executed;
    d.branches_divergent -= before.branches_divergent;
    d.issue_cycles -= before.issue_cycles;
    d.warp_instructions -= before.warp_instructions;
    d.shared_accesses -= before.shared_accesses;
    d.shared_cycles -= before.shared_cycles;
    d.num_blocks -= before.num_blocks;
    d.num_warps -= before.num_warps;
    return d;
  }

  /// Per-launch average after accumulating n launches (resource fields are
  /// already per-launch and pass through unchanged). n must be positive:
  /// averaging over zero launches is a caller bookkeeping bug, not a
  /// quantity with a meaningful value.
  KernelStats averaged_over(std::uint64_t n) const {
    MOG_CHECK(n > 0, "cannot average KernelStats over zero launches");
    KernelStats s = *this;
    if (n == 1) return s;
    s.load_instructions /= n;
    s.store_instructions /= n;
    s.load_transactions /= n;
    s.store_transactions /= n;
    s.rmw_transactions /= n;
    s.bytes_requested_load /= n;
    s.bytes_requested_store /= n;
    s.bytes_transferred_load /= n;
    s.bytes_transferred_store /= n;
    s.dram_page_switches /= n;
    s.branches_executed /= n;
    s.branches_divergent /= n;
    s.issue_cycles /= n;
    s.warp_instructions /= n;
    s.shared_accesses /= n;
    s.shared_cycles /= n;
    s.num_blocks /= n;
    s.num_warps /= n;
    return s;
  }
};

/// Enumerate every exported metric of a launch as (name, value, extensive).
/// Extensive metrics scale with the amount of work (counters); intensive
/// ones are per-launch properties (resources, efficiencies). This is the
/// single source of metric names shared by the telemetry rollups and the
/// bench reports — adding a field here makes it appear in both.
template <typename Fn>
void visit_metrics(const KernelStats& s, Fn&& fn) {
  fn("load_instructions", static_cast<double>(s.load_instructions), true);
  fn("store_instructions", static_cast<double>(s.store_instructions), true);
  fn("load_transactions", static_cast<double>(s.load_transactions), true);
  fn("store_transactions", static_cast<double>(s.store_transactions), true);
  fn("rmw_transactions", static_cast<double>(s.rmw_transactions), true);
  fn("bytes_transferred_load", static_cast<double>(s.bytes_transferred_load),
     true);
  fn("bytes_transferred_store", static_cast<double>(s.bytes_transferred_store),
     true);
  fn("dram_page_switches", static_cast<double>(s.dram_page_switches), true);
  fn("branches_executed", static_cast<double>(s.branches_executed), true);
  fn("branches_divergent", static_cast<double>(s.branches_divergent), true);
  fn("issue_cycles", static_cast<double>(s.issue_cycles), true);
  fn("warp_instructions", static_cast<double>(s.warp_instructions), true);
  fn("shared_accesses", static_cast<double>(s.shared_accesses), true);
  fn("shared_cycles", static_cast<double>(s.shared_cycles), true);
  fn("shared_replay_cycles",
     static_cast<double>(s.shared_cycles >= s.shared_accesses
                             ? s.shared_cycles - s.shared_accesses
                             : 0),
     true);
  fn("num_blocks", static_cast<double>(s.num_blocks), true);
  fn("num_warps", static_cast<double>(s.num_warps), true);
  fn("regs_per_thread", static_cast<double>(s.regs_per_thread), false);
  fn("threads_per_block", static_cast<double>(s.threads_per_block), false);
  fn("shared_bytes_per_block", static_cast<double>(s.shared_bytes_per_block),
     false);
  fn("memory_access_efficiency", s.memory_access_efficiency(), false);
  fn("branch_efficiency", s.branch_efficiency(), false);
  fn("divergence_ratio", 1.0 - s.branch_efficiency(), false);
}

/// Per-block execution record for spatial attribution (obs::HeatmapSink).
/// `delta` holds the counters this block contributed; DRAM page switches
/// are absent from parallel-launch deltas (row locality is a launch-order
/// property replayed after the blocks finish, not attributable to one
/// block).
struct BlockStats {
  std::int64_t block_id = 0;
  std::int64_t first_thread = 0;  ///< block_id * threads_per_block
  int threads = 0;                ///< threads in this block (last may be short)
  KernelStats delta;
};

/// Counter export hook: installed on a Device, it observes the finalized
/// KernelStats of every launch (telemetry::CounterRegistry implements this).
///
/// Sinks that also want per-block spatial data override wants_block_stats()
/// — the Device checks it once per launch and otherwise pays nothing — and
/// on_block_stats(), which MAY BE CALLED CONCURRENTLY from executor workers
/// (each block id exactly once per launch, in no particular order); the
/// override must synchronize itself. on_kernel_launch remains the single
/// serial end-of-launch call either way.
class StatsSink {
 public:
  virtual ~StatsSink() = default;
  virtual void on_kernel_launch(const KernelStats& stats) = 0;
  virtual bool wants_block_stats() const { return false; }
  virtual void on_block_stats(const BlockStats& /*block*/) {}
};

}  // namespace mog::gpusim
