// Host <-> device transfer timing and the per-frame pipeline schedules.
//
// Fig. 5 of the paper: without overlap, each frame pays
// upload + kernel + download in sequence; with overlap (double buffering,
// Fig. 5b) the DMA engine streams frame i+1 in and foreground i-1 out while
// the kernel processes frame i, so steady-state per-frame time is
// max(kernel, upload + download).
#pragma once

#include <cstdint>

#include "mog/gpusim/device_spec.hpp"

namespace mog::gpusim {

/// Seconds for one DMA transfer of `bytes` over the host link.
double transfer_seconds(const DeviceSpec& spec, std::uint64_t bytes);

struct FrameSchedule {
  double upload_seconds = 0;
  double kernel_seconds = 0;
  double download_seconds = 0;
};

/// Total pipeline seconds for `frames` identical frames, sequential
/// (Fig. 5a): N * (up + kernel + down).
double sequential_pipeline_seconds(const FrameSchedule& f,
                                   std::uint64_t frames);

/// Total pipeline seconds with transfer/kernel overlap (Fig. 5b):
/// up + (N-1) * max(kernel, up + down) + kernel + down — the first upload
/// and last download cannot be hidden.
double overlapped_pipeline_seconds(const FrameSchedule& f,
                                   std::uint64_t frames);

}  // namespace mog::gpusim
