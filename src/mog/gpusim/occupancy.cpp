#include "mog/gpusim/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "mog/common/error.hpp"
#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec, int regs_per_thread,
                            int threads_per_block,
                            std::uint64_t shared_bytes_per_block) {
  MOG_CHECK(regs_per_thread >= 1, "regs_per_thread must be positive");
  MOG_CHECK(threads_per_block >= 1 &&
                threads_per_block <= spec.max_threads_per_block,
            "threads_per_block out of range");

  const int warps_per_block = (threads_per_block + kWarpSize - 1) / kWarpSize;

  // Warp-count limit.
  const int limit_warps = spec.max_warps_per_sm / warps_per_block;

  // Register limit: per-warp allocation, rounded up to the allocation unit.
  const int regs_per_warp_raw = regs_per_thread * kWarpSize;
  const int regs_per_warp =
      (regs_per_warp_raw + spec.register_alloc_unit - 1) /
      spec.register_alloc_unit * spec.register_alloc_unit;
  const int warps_by_regs = spec.registers_per_sm / regs_per_warp;
  const int limit_regs = warps_by_regs / warps_per_block;

  // Shared-memory limit (0 bytes = unlimited).
  int limit_shared = std::numeric_limits<int>::max();
  if (shared_bytes_per_block > 0) {
    const std::uint64_t rounded =
        (shared_bytes_per_block + spec.shared_alloc_unit - 1) /
        spec.shared_alloc_unit * spec.shared_alloc_unit;
    limit_shared = static_cast<int>(
        static_cast<std::uint64_t>(spec.shared_mem_per_sm) / rounded);
  }

  Occupancy occ;
  occ.blocks_per_sm = std::min({limit_warps, spec.max_blocks_per_sm,
                                limit_regs, limit_shared});
  if (occ.blocks_per_sm <= 0) occ.blocks_per_sm = 0;

  // Record the binding constraint; ties prefer the structural limits
  // (warps, then the block-scheduler cap) over resource limits.
  if (occ.blocks_per_sm == limit_warps)
    occ.limiter = Occupancy::Limiter::kWarps;
  else if (occ.blocks_per_sm == spec.max_blocks_per_sm)
    occ.limiter = Occupancy::Limiter::kBlocks;
  else if (occ.blocks_per_sm == limit_shared)
    occ.limiter = Occupancy::Limiter::kSharedMem;
  else
    occ.limiter = Occupancy::Limiter::kRegisters;

  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.theoretical = static_cast<double>(occ.warps_per_sm) /
                    static_cast<double>(spec.max_warps_per_sm);
  occ.achieved = occ.theoretical * kAchievedOccupancyFactor;
  return occ;
}

const char* to_string(Occupancy::Limiter limiter) {
  switch (limiter) {
    case Occupancy::Limiter::kWarps:
      return "warps";
    case Occupancy::Limiter::kBlocks:
      return "blocks";
    case Occupancy::Limiter::kRegisters:
      return "registers";
    case Occupancy::Limiter::kSharedMem:
      return "shared-memory";
  }
  return "?";
}

}  // namespace mog::gpusim
