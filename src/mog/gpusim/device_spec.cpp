#include "mog/gpusim/device_spec.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "mog/common/strutil.hpp"

namespace mog::gpusim {

int resolved_executor_threads(int requested) {
  int n = requested;
  if (n <= 0) {
    if (const char* env = std::getenv("MOG_EXECUTOR_THREADS");
        env != nullptr && std::atoi(env) > 0)
      n = std::atoi(env);
    else
      n = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::clamp(n, 1, 64);
}

std::string describe_device(const DeviceSpec& spec) {
  std::string s;
  s += strprintf("%s\n", spec.name.c_str());
  s += strprintf("  SMs x cores        : %d x %d (%d cores)\n", spec.num_sms,
                 spec.cores_per_sm, spec.num_sms * spec.cores_per_sm);
  s += strprintf("  core clock         : %.2f GHz\n", spec.core_clock_ghz);
  s += strprintf("  DRAM bandwidth     : %.1f GB/s (GDDR5)\n",
                 spec.dram_bandwidth_gbps);
  s += strprintf("  shared mem / SM    : %d KB (+%d KB L1)\n",
                 spec.shared_mem_per_sm / 1024, spec.l1_bytes / 1024);
  s += strprintf("  registers / SM     : %dK x 32-bit\n",
                 spec.registers_per_sm / 1024);
  s += strprintf("  max threads / SM   : %d (%d warps, %d blocks)\n",
                 spec.max_threads_per_sm, spec.max_warps_per_sm,
                 spec.max_blocks_per_sm);
  s += strprintf("  host link          : PCIe, %.2f GB/s effective\n",
                 spec.pcie_effective_gbps);
  return s;
}

DeviceSpec embedded_device_spec() {
  DeviceSpec spec;
  spec.name = "Embedded GPU, Tegra-K1-class (simulated)";
  // One 192-core SMX modeled as six 32-lane SM-equivalents at 0.85 GHz.
  spec.num_sms = 6;
  spec.cores_per_sm = 32;
  spec.core_clock_ghz = 0.85;
  // Kepler-generation occupancy limits.
  spec.max_threads_per_sm = 2048;
  spec.max_warps_per_sm = 64;
  spec.max_blocks_per_sm = 16;
  spec.registers_per_sm = 64 * 1024;
  spec.max_registers_per_thread = 255;
  spec.register_alloc_unit = 256;
  spec.shared_mem_per_sm = 48 * 1024;
  // Narrow LPDDR3, shared with the host CPU.
  spec.dram_bandwidth_gbps = 14.9;
  // Integrated memory: "transfers" are cache-coherent copies, cheap but not
  // free (the runtime still stages frames).
  spec.pcie_effective_gbps = 5.0;
  spec.dma_setup_seconds = 5e-6;
  return spec;
}

}  // namespace mog::gpusim
