// Fault-injection seams for the simulated device.
//
// Long-running deployments die on the unhappy path: DMA engines time out,
// launches fail, ECC scrubbing misses a flipped bit. Real CUDA surfaces
// these as cudaError codes from cudaMemcpy / kernel launches; the simulator
// mirrors that with a hook interface consulted at the same three points —
// before a host->device transfer, before a device->host transfer, and before
// a kernel launch — plus a post-transfer callback that may corrupt the
// payload in place (silent data corruption, the kind only a checksum or a
// model-health watchdog catches).
//
// Hooks are *non-owning* and optional: a Device with no hook installed
// behaves exactly like the seed simulator. mog::fault::FaultInjector is the
// canonical implementation; tests may install bespoke hooks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mog/common/error.hpp"

namespace mog::gpusim {

enum class TransferDir { kHostToDevice, kDeviceToHost };

inline const char* to_string(TransferDir dir) {
  return dir == TransferDir::kHostToDevice ? "host->device" : "device->host";
}

/// A DMA transfer failed (modeling cudaErrorInvalidValue / timeout from
/// cudaMemcpy). Transient: the payload was not delivered and the operation
/// may be retried.
class TransferError : public Error {
 public:
  TransferError(TransferDir dir, const std::string& what)
      : Error(what), dir_(dir) {}
  TransferDir dir() const { return dir_; }

 private:
  TransferDir dir_;
};

/// A kernel launch failed before any thread executed (modeling
/// cudaErrorLaunchFailure reported at launch time). Transient; device
/// memory is untouched.
class LaunchError : public Error {
 public:
  using Error::Error;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called before the copy; throw TransferError to fail the transfer (no
  /// bytes are moved).
  virtual void before_transfer(TransferDir dir, std::uint64_t bytes) = 0;

  /// Called after a successful copy with the destination payload; may flip
  /// bits in place to model silent transfer corruption.
  virtual void after_transfer(TransferDir dir, void* data,
                              std::size_t bytes) = 0;

  /// Called before any block executes; throw LaunchError to fail the launch.
  virtual void before_launch() = 0;
};

}  // namespace mog::gpusim
