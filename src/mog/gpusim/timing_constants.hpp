// Calibration constants for the simulated Tesla C2075 timing model.
//
// Every constant either comes straight from Fermi documentation or is a
// calibration knob fixed ONCE against the paper's measured optimization
// ladder (13x/41x/57x/85x/86x/97x/101x, §IV) and then left untouched for all
// other experiments (5-Gaussian, float, tiled sweeps). Rationale inline.
#pragma once

namespace mog::gpusim {

// ---- per-warp instruction issue costs (cycles on one SM) -----------------
// A Fermi SM issues a 32-lane single-precision/int warp instruction in one
// cycle across its 32 cores; double precision runs at half rate (C2075:
// 1.03 TFLOPS SP vs 515 GFLOPS DP). Division and square root are iterative
// software sequences (no hardware divide), far costlier in double precision.
inline constexpr int kCyclesSpArith = 1;
inline constexpr int kCyclesDpArith = 2;
inline constexpr int kCyclesIntArith = 1;
inline constexpr int kCyclesSpDiv = 12;
inline constexpr int kCyclesSpSqrt = 12;
inline constexpr int kCyclesDpDiv = 32;
inline constexpr int kCyclesDpSqrt = 32;
inline constexpr int kCyclesBranch = 6;  // BRA + SSY + reconvergence overhead
// Extra serialization charged when a branch actually diverges: both-path
// pipeline drain, mask bookkeeping, reconvergence-stack sync. This is the
// per-event cost on top of executing both paths under complementary masks.
inline constexpr int kCyclesDivergence = 60;
inline constexpr int kCyclesMemIssue = 1;   ///< ld/st issue slot
// Fermi replays a memory instruction once per additional segment it
// touches; each replay occupies LSU issue slots, which is the in-SM
// serialization cost of uncoalesced access (on top of the wasted traffic).
inline constexpr int kCyclesLsuReplay = 4;
inline constexpr int kCyclesSharedF32 = 1;  ///< conflict-free shared access
inline constexpr int kCyclesSharedF64 = 2;  ///< 64-bit = two 32-bit phases

// ---- memory system --------------------------------------------------------
// Round-trip DRAM latency for Fermi is ~400-800 cycles depending on traffic;
// 600 is the calibration midpoint.
inline constexpr double kDramLatencyCycles = 600.0;
// Outstanding misses a warp keeps in flight (MSHR-limited memory-level
// parallelism); divides the latency-bound term.
inline constexpr double kMemParallelismPerWarp = 1.8;
// Sustainable fraction of the device's peak DRAM bandwidth against
// L1-level traffic. Well below 1.0: the C2075 runs with ECC enabled
// (~20-25% off the top), read/write turnaround and the L1-replay traffic of
// partially-used segments eat the rest. (0.59 * 144 GB/s = 85 GB/s on the
// C2075; other DeviceSpecs scale through their own peak bandwidth.)
inline constexpr double kMemSystemUtilization = 85.0 / 144.0;
// DRAM row activation charged per switch of an open row (tRC mapped into
// core cycles), fired only when the open-row set (32 rows) thrashes.
inline constexpr double kPageSwitchCycles = 10.0;

// ---- L1 model -------------------------------------------------------------
// 16 KB L1 = 128 lines of 128 B shared by up to 48 resident warps: each warp
// effectively holds only a few lines between its own instructions. 4 is the
// calibration value that reproduces the paper's 17% AoS load efficiency.
inline constexpr int kEffectiveL1SegmentsPerWarp = 4;

// ---- latency hiding / occupancy -------------------------------------------
// Exposed memory stall = mem_bound * (1 - occ / (occ + kHideHalfOccupancy)):
// a saturating Little's-law proxy — at the C2075's typical 50-65% achieved
// occupancy roughly a quarter to a third of the memory time stays exposed.
inline constexpr double kHideHalfOccupancy = 0.15;
// Achieved occupancy = theoretical * this factor (scheduler gaps, tail
// blocks); calibrated against the paper's profiler-reported 52%-65% range.
inline constexpr double kAchievedOccupancyFactor = 0.90;

// ---- issue efficiency ------------------------------------------------------
// Real kernels never sustain the peak issue rate (RAW stalls, instruction
// fetch, dual-issue imbalance). Divides into compute time directly, and is
// further scaled by occupancy: with few resident warps the scheduler cannot
// cover intra-warp dependency latency, so sustained IPC drops —
//   utilization = occ / (occ + kIssueSatOccupancy).
inline constexpr double kSustainedIssueEfficiency = 0.95;
inline constexpr double kIssueSatOccupancy = 0.25;

// ---- fixed overheads --------------------------------------------------------
inline constexpr double kKernelLaunchSeconds = 8e-6;

// ---- register model ---------------------------------------------------------
// The tracker counts every live Vec eagerly, including expression
// temporaries a real register allocator folds away via CSE, reuse and
// rematerialization; this scale maps tracked peak words to allocated
// registers. Fixed across variants so register *differences* between
// variants stay mechanistic.
inline constexpr double kRegisterPressureScale = 0.60;
// Words beyond tracked named values: kernel parameters, stack/ABI slots,
// address staging.
inline constexpr int kAbiRegisterWords = 9;

}  // namespace mog::gpusim
