#include "mog/gpusim/transfer_model.hpp"

#include <algorithm>

namespace mog::gpusim {

double transfer_seconds(const DeviceSpec& spec, std::uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return spec.dma_setup_seconds +
         static_cast<double>(bytes) / (spec.pcie_effective_gbps * 1e9);
}

double sequential_pipeline_seconds(const FrameSchedule& f,
                                   std::uint64_t frames) {
  return static_cast<double>(frames) *
         (f.upload_seconds + f.kernel_seconds + f.download_seconds);
}

double overlapped_pipeline_seconds(const FrameSchedule& f,
                                   std::uint64_t frames) {
  if (frames == 0) return 0.0;
  const double steady =
      std::max(f.kernel_seconds, f.upload_seconds + f.download_seconds);
  return f.upload_seconds +
         static_cast<double>(frames - 1) * steady + f.kernel_seconds +
         f.download_seconds;
}

}  // namespace mog::gpusim
