// Simulated GPU hardware description.
//
// Defaults model the paper's Nvidia Tesla C2075 (Fermi GF110, compute
// capability 2.0) as specified in Table I and the product brief:
// 14 SMs x 32 cores, 1.15 GHz, 1.03 TFLOPS SP / 515 GFLOPS DP, 6 GB GDDR5 at
// 144 GB/s, 48 KB shared memory + 16 KB L1 per SM, 32 K 32-bit registers per
// SM, up to 1536 threads / 48 warps / 8 blocks per SM.
#pragma once

#include <cstdint>
#include <string>

namespace mog::gpusim {

inline constexpr int kWarpSize = 32;

struct DeviceSpec {
  std::string name = "Nvidia Tesla C2075 (simulated)";

  // Compute resources.
  int num_sms = 14;
  int cores_per_sm = 32;
  double core_clock_ghz = 1.15;

  // Scheduler / occupancy limits (compute capability 2.0).
  int max_threads_per_sm = 1536;
  int max_warps_per_sm = 48;
  int max_blocks_per_sm = 8;
  int max_threads_per_block = 1024;
  int registers_per_sm = 32 * 1024;     ///< 32-bit registers
  int max_registers_per_thread = 63;
  int register_alloc_unit = 64;         ///< per-warp allocation granularity
  int shared_mem_per_sm = 48 * 1024;    ///< bytes (48 KB shared / 16 KB L1)
  int shared_alloc_unit = 128;          ///< bytes

  // Memory system.
  double dram_bandwidth_gbps = 144.0;   ///< GDDR5 peak
  int l1_bytes = 16 * 1024;             ///< L1 when configured 48 KB shared
  int load_segment_bytes = 128;         ///< L1-cached load granularity
  int store_segment_bytes = 32;         ///< stores bypass L1 (write-evict)
  int dram_page_bytes = 4096;           ///< row-locality granularity

  // Host link: PCIe gen2 x16 with pageable host memory. The paper profiles
  // transfers at about one third of per-frame time before overlapping, which
  // pins the effective rate near 1 GB/s (typical for non-pinned cudaMemcpy
  // on this generation).
  double pcie_effective_gbps = 1.1;
  double dma_setup_seconds = 15e-6;

  // Host-side simulation knob (not a property of the modeled GPU): number of
  // host worker threads the block executor spreads a launch's blocks across.
  // CUDA blocks are independent by construction, so this changes wall-clock
  // only — masks, device state, and every KernelStats counter are
  // bit-identical at any thread count. 0 = one worker per hardware thread
  // (overridable via the MOG_EXECUTOR_THREADS environment variable);
  // 1 = serial execution on the launching thread.
  int executor_threads = 0;

  double clock_hz() const { return core_clock_ghz * 1e9; }
  double dram_bytes_per_cycle() const {
    return dram_bandwidth_gbps * 1e9 / clock_hz();
  }
};

/// Resolve an executor_threads knob to a concrete worker count in [1, 64].
/// `requested` <= 0 means auto: the MOG_EXECUTOR_THREADS environment
/// variable if set and positive, else std::thread::hardware_concurrency().
int resolved_executor_threads(int requested);

/// The paper's Table I CPU column lives in mog/cpu/cost_model.hpp; this
/// helper renders the GPU column for the Table I bench.
std::string describe_device(const DeviceSpec& spec);

/// A Kepler-era embedded GPU (Tegra-K1-class) for the paper's §VI future
/// work: one SM, low clock, narrow LPDDR3 shared with the host (so
/// transfers are cheap but bandwidth is scarce), 1/24-rate double precision.
DeviceSpec embedded_device_spec();

}  // namespace mog::gpusim
