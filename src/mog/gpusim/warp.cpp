#include "mog/gpusim/warp.hpp"

#include <cmath>

namespace mog::gpusim {

namespace detail {

// Function multiversioning keeps the build portable while letting hosts
// with an FMA unit run the lane loop as vector vfmadd instructions (the
// "fma" clone; glibc's ifunc resolver picks it at load time). Both clones
// produce the one correctly-rounded IEEE 754 fma result per lane, so the
// choice is invisible to every counter and mask byte.
#if defined(__x86_64__) && defined(__GNUC__)
#define MOG_FMA_CLONES __attribute__((target_clones("fma", "default")))
#else
#define MOG_FMA_CLONES
#endif

MOG_FMA_CLONES
void fma_lanes(const float* a, const float* b, const float* c, float* r) {
  for (int i = 0; i < kWarpSize; ++i) r[i] = std::fma(a[i], b[i], c[i]);
}

MOG_FMA_CLONES
void fma_lanes(const double* a, const double* b, const double* c, double* r) {
  for (int i = 0; i < kWarpSize; ++i) r[i] = std::fma(a[i], b[i], c[i]);
}

#undef MOG_FMA_CLONES

}  // namespace detail

WarpCtx::WarpCtx(ExecEnv& env, std::int64_t global_thread_base,
                 int active_lanes)
    : env_(env), global_base_(global_thread_base) {
  MOG_CHECK(active_lanes >= 1 && active_lanes <= kWarpSize,
            "warp must have 1..32 active lanes");
  env_.active_mask = active_lanes == kWarpSize
                         ? 0xffffffffu
                         : ((1u << active_lanes) - 1u);
}

WarpCtx::~WarpCtx() = default;

}  // namespace mog::gpusim
