#include "mog/gpusim/warp.hpp"

namespace mog::gpusim {

ExecEnv*& exec_env() {
  thread_local ExecEnv* env = nullptr;
  return env;
}

WarpCtx::WarpCtx(ExecEnv& env, std::int64_t global_thread_base,
                 int active_lanes)
    : env_(env), global_base_(global_thread_base) {
  MOG_CHECK(active_lanes >= 1 && active_lanes <= kWarpSize,
            "warp must have 1..32 active lanes");
  env_.active_mask = active_lanes == kWarpSize
                         ? 0xffffffffu
                         : ((1u << active_lanes) - 1u);
}

WarpCtx::~WarpCtx() = default;

}  // namespace mog::gpusim
