// Global-memory coalescing model (Fermi-style).
//
// Per warp memory instruction, the active lanes' byte addresses are folded
// into memory segments:
//   * loads  — 128 B segments (L1 cache-line granularity). A small LRU
//     segment cache stands in for the per-warp slice of the 16 KB L1: with
//     ~48 resident warps contending for 128 lines, each warp effectively
//     keeps only a handful of lines alive between its own instructions —
//     exactly the eviction behaviour the paper describes for the AoS layout
//     ("the cache line holding the data will be evicted while all threads in
//     a group read their m").
//   * stores — 32 B segments, no caching (Fermi L1 is write-evict).
//
// The analyzer also tracks DRAM row locality: each transaction landing on a
// different 4 KB page than its predecessor counts a page switch, which the
// timing model charges a small activation penalty. Streaming access patterns
// pay almost nothing; the tiled kernel's frame-group gathers pay per frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/stats.hpp"

namespace mog::gpusim {

/// Open-row LRU of the DRAM model: GDDR5 keeps one row open per bank across
/// many banks and channels; 32 concurrently-open rows means streaming
/// patterns (a handful of array streams) pay almost nothing while wide
/// gathers across many regions (e.g. large tiled frame groups) pay
/// activations. Row state deliberately persists across warps *and* blocks —
/// the parallel block executor preserves those serial-order semantics by
/// replaying each block's recorded page sequence in block order (see
/// Device::launch).
class DramRowLru {
 public:
  /// Returns true when `page` is already open; opens it (LRU) otherwise.
  /// Inline: the serial launch path consults it once per DRAM transaction.
  bool access(std::uint64_t page) {
    for (int i = 0; i < open_count_; ++i) {
      if (open_rows_[i] == page) {
        for (int j = i; j > 0; --j) open_rows_[j] = open_rows_[j - 1];
        open_rows_[0] = page;
        return true;
      }
    }
    if (open_count_ < kOpenRows) ++open_count_;
    for (int j = open_count_ - 1; j > 0; --j)
      open_rows_[j] = open_rows_[j - 1];
    open_rows_[0] = page;
    return false;
  }

 private:
  static constexpr int kOpenRows = 32;
  std::uint64_t open_rows_[kOpenRows];
  int open_count_ = 0;
};

class SegmentCache {
 public:
  explicit SegmentCache(int capacity);

  /// Returns true on hit; inserts (LRU) on miss. Inline: consulted once per
  /// distinct load segment of every warp memory instruction.
  bool access(std::uint64_t segment_id) {
    // MRU-first linear scan; on hit, move to front.
    for (int i = 0; i < size_; ++i) {
      if (lines_[i] == segment_id) {
        for (int j = i; j > 0; --j) lines_[j] = lines_[j - 1];
        lines_[0] = segment_id;
        return true;
      }
    }
    // Miss: shift and insert at front, evicting the LRU tail.
    if (size_ < capacity_) ++size_;
    for (int j = size_ - 1; j > 0; --j) lines_[j] = lines_[j - 1];
    lines_[0] = segment_id;
    return false;
  }
  void clear();
  int capacity() const { return capacity_; }

 private:
  int capacity_;
  // Tiny capacity (≤ 16): a plain array beats any map.
  std::uint64_t lines_[16];
  int size_ = 0;
};

class Coalescer {
 public:
  Coalescer(const DeviceSpec& spec, int effective_l1_segments);

  enum class Kind { kLoad, kStore };

  /// Record one warp-level memory instruction. `addrs` are the active
  /// lanes' element byte addresses; `bytes_per_lane` the access width.
  void access(Kind kind, std::span<const std::uint64_t> addrs,
              unsigned bytes_per_lane, KernelStats& stats);

  /// Reset per-warp state (segment cache) at warp start.
  void begin_warp();

  /// Restore construction state (cold caches, inline row accounting) so a
  /// persistent per-worker Coalescer can be reused across launches without
  /// reallocating — equivalent to destroying and rebuilding it.
  void reset();

  /// Deferred row accounting for the parallel block executor: while a trace
  /// is installed, DRAM-bound transactions append their page id to it
  /// instead of consulting the local open-row LRU, and dram_page_switches is
  /// *not* incremented inline. The launcher replays the per-block traces in
  /// block order through one DramRowLru afterwards, reproducing the serial
  /// execution's counts exactly regardless of which host worker ran which
  /// block. Pass nullptr to restore inline accounting (the standalone-use
  /// default, e.g. unit tests and the coalescing ablation bench).
  void set_page_trace(std::vector<std::uint64_t>* trace) {
    page_trace_ = trace;
  }

 private:
  int load_segment_bytes_;
  int store_segment_bytes_;
  int page_bytes_;
  // Segment/page sizes are powers of two on every real device, so the
  // address→segment and segment→page maps are shifts; -1 falls back to
  // division for a hypothetical non-power-of-two spec. Hardware 64-bit
  // division dominated Coalescer::access before this (dozens per warp
  // memory instruction).
  int load_seg_shift_;
  int store_seg_shift_;
  int page_shift_;
  SegmentCache l1_;
  DramRowLru rows_;
  std::vector<std::uint64_t>* page_trace_ = nullptr;
};

}  // namespace mog::gpusim
