// Global-memory coalescing model (Fermi-style).
//
// Per warp memory instruction, the active lanes' byte addresses are folded
// into memory segments:
//   * loads  — 128 B segments (L1 cache-line granularity). A small LRU
//     segment cache stands in for the per-warp slice of the 16 KB L1: with
//     ~48 resident warps contending for 128 lines, each warp effectively
//     keeps only a handful of lines alive between its own instructions —
//     exactly the eviction behaviour the paper describes for the AoS layout
//     ("the cache line holding the data will be evicted while all threads in
//     a group read their m").
//   * stores — 32 B segments, no caching (Fermi L1 is write-evict).
//
// The analyzer also tracks DRAM row locality: each transaction landing on a
// different 4 KB page than its predecessor counts a page switch, which the
// timing model charges a small activation penalty. Streaming access patterns
// pay almost nothing; the tiled kernel's frame-group gathers pay per frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/stats.hpp"

namespace mog::gpusim {

/// Open-row LRU of the DRAM model: GDDR5 keeps one row open per bank across
/// many banks and channels; 32 concurrently-open rows means streaming
/// patterns (a handful of array streams) pay almost nothing while wide
/// gathers across many regions (e.g. large tiled frame groups) pay
/// activations. Row state deliberately persists across warps *and* blocks —
/// the parallel block executor preserves those serial-order semantics by
/// replaying each block's recorded page sequence in block order (see
/// Device::launch).
class DramRowLru {
 public:
  /// Returns true when `page` is already open; opens it (LRU) otherwise.
  bool access(std::uint64_t page);

 private:
  static constexpr int kOpenRows = 32;
  std::uint64_t open_rows_[kOpenRows];
  int open_count_ = 0;
};

class SegmentCache {
 public:
  explicit SegmentCache(int capacity);

  /// Returns true on hit; inserts (LRU) on miss.
  bool access(std::uint64_t segment_id);
  void clear();
  int capacity() const { return capacity_; }

 private:
  int capacity_;
  // Tiny capacity (≤ 16): a plain array beats any map.
  std::uint64_t lines_[16];
  int size_ = 0;
};

class Coalescer {
 public:
  Coalescer(const DeviceSpec& spec, int effective_l1_segments);

  enum class Kind { kLoad, kStore };

  /// Record one warp-level memory instruction. `addrs` are the active
  /// lanes' element byte addresses; `bytes_per_lane` the access width.
  void access(Kind kind, std::span<const std::uint64_t> addrs,
              unsigned bytes_per_lane, KernelStats& stats);

  /// Reset per-warp state (segment cache) at warp start.
  void begin_warp();

  /// Deferred row accounting for the parallel block executor: while a trace
  /// is installed, DRAM-bound transactions append their page id to it
  /// instead of consulting the local open-row LRU, and dram_page_switches is
  /// *not* incremented inline. The launcher replays the per-block traces in
  /// block order through one DramRowLru afterwards, reproducing the serial
  /// execution's counts exactly regardless of which host worker ran which
  /// block. Pass nullptr to restore inline accounting (the standalone-use
  /// default, e.g. unit tests and the coalescing ablation bench).
  void set_page_trace(std::vector<std::uint64_t>* trace) {
    page_trace_ = trace;
  }

 private:
  int load_segment_bytes_;
  int store_segment_bytes_;
  int page_bytes_;
  SegmentCache l1_;
  DramRowLru rows_;
  std::vector<std::uint64_t>* page_trace_ = nullptr;
};

}  // namespace mog::gpusim
