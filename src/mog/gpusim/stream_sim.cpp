#include "mog/gpusim/stream_sim.hpp"

#include <algorithm>

#include "mog/common/error.hpp"

namespace mog::gpusim {

namespace {

void push(Timeline& tl, TimelineOp::Engine engine, int frame,
          const char* kind, double start, double duration) {
  tl.ops.push_back(TimelineOp{engine, frame, kind, start, start + duration});
  tl.total_seconds = std::max(tl.total_seconds, start + duration);
}

}  // namespace

Timeline simulate_sequential(const FrameSchedule& frame, int frames) {
  MOG_CHECK(frames >= 0, "negative frame count");
  Timeline tl;
  double t = 0;
  for (int i = 0; i < frames; ++i) {
    push(tl, TimelineOp::Engine::kDma, i, "up", t, frame.upload_seconds);
    t += frame.upload_seconds;
    push(tl, TimelineOp::Engine::kKernel, i, "kernel", t,
         frame.kernel_seconds);
    t += frame.kernel_seconds;
    push(tl, TimelineOp::Engine::kDma, i, "down", t, frame.download_seconds);
    t += frame.download_seconds;
  }
  return tl;
}

Timeline simulate_overlapped(const FrameSchedule& frame, int frames) {
  MOG_CHECK(frames >= 0, "negative frame count");
  Timeline tl;
  if (frames == 0) return tl;

  // Enqueue order follows the standard double-buffered host loop:
  //   up(0); for i: { launch kernel(i); enqueue up(i+1); enqueue down(i); }
  // so the next frame's upload sits ahead of the current download in the
  // copy engine's FIFO, and neither suffers head-of-line blocking behind an
  // op whose dependency is further out.
  double dma_free = 0, kernel_free = 0;
  std::vector<double> upload_end(static_cast<std::size_t>(frames), 0);
  std::vector<double> kernel_end(static_cast<std::size_t>(frames), 0);

  auto schedule_upload = [&](int i) {
    // Needs the DMA engine and its input buffer (two rotate: kernel i-2
    // must have released it).
    double ready = dma_free;
    if (i >= 2)
      ready = std::max(ready, kernel_end[static_cast<std::size_t>(i - 2)]);
    push(tl, TimelineOp::Engine::kDma, i, "up", ready, frame.upload_seconds);
    upload_end[static_cast<std::size_t>(i)] = ready + frame.upload_seconds;
    dma_free = upload_end[static_cast<std::size_t>(i)];
  };

  schedule_upload(0);
  for (int i = 0; i < frames; ++i) {
    const double kstart =
        std::max(upload_end[static_cast<std::size_t>(i)], kernel_free);
    push(tl, TimelineOp::Engine::kKernel, i, "kernel", kstart,
         frame.kernel_seconds);
    kernel_end[static_cast<std::size_t>(i)] = kstart + frame.kernel_seconds;
    kernel_free = kernel_end[static_cast<std::size_t>(i)];

    if (i + 1 < frames) schedule_upload(i + 1);

    const double dstart =
        std::max(kernel_end[static_cast<std::size_t>(i)], dma_free);
    push(tl, TimelineOp::Engine::kDma, i, "down", dstart,
         frame.download_seconds);
    dma_free = dstart + frame.download_seconds;
  }
  return tl;
}

std::string Timeline::ascii(int columns) const {
  MOG_CHECK(columns >= 16, "timeline needs at least 16 columns");
  if (ops.empty() || total_seconds <= 0) return "(empty timeline)\n";
  const double scale = static_cast<double>(columns) / total_seconds;

  std::string dma(static_cast<std::size_t>(columns), '.');
  std::string ker(static_cast<std::size_t>(columns), '.');
  for (const TimelineOp& op : ops) {
    std::string& row = op.engine == TimelineOp::Engine::kDma ? dma : ker;
    int lo = static_cast<int>(op.start_seconds * scale);
    int hi = static_cast<int>(op.end_seconds * scale);
    lo = std::clamp(lo, 0, columns - 1);
    hi = std::clamp(hi, lo + 1, columns);
    char glyph = 'K';
    if (op.kind[0] == 'u') glyph = 'U';
    if (op.kind[0] == 'd') glyph = 'D';
    for (int c = lo; c < hi; ++c)
      row[static_cast<std::size_t>(c)] = glyph;
  }
  std::string out;
  out += "DMA |" + dma + "|\n";
  out += "KER |" + ker + "|\n";
  return out;
}

}  // namespace mog::gpusim
