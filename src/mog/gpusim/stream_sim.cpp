#include "mog/gpusim/stream_sim.hpp"

#include <algorithm>

#include "mog/common/error.hpp"

namespace mog::gpusim {

namespace {

void push(Timeline& tl, TimelineOp::Engine engine, int frame,
          const char* kind, double start, double duration) {
  tl.ops.push_back(TimelineOp{engine, frame, kind, start, start + duration});
  tl.total_seconds = std::max(tl.total_seconds, start + duration);
}

}  // namespace

Timeline simulate_sequential(const FrameSchedule& frame, int frames) {
  MOG_CHECK(frames >= 0, "negative frame count");
  Timeline tl;
  double t = 0;
  for (int i = 0; i < frames; ++i) {
    push(tl, TimelineOp::Engine::kDma, i, "up", t, frame.upload_seconds);
    t += frame.upload_seconds;
    push(tl, TimelineOp::Engine::kKernel, i, "kernel", t,
         frame.kernel_seconds);
    t += frame.kernel_seconds;
    push(tl, TimelineOp::Engine::kDma, i, "down", t, frame.download_seconds);
    t += frame.download_seconds;
  }
  return tl;
}

Timeline simulate_overlapped(const FrameSchedule& frame, int frames) {
  MOG_CHECK(frames >= 0, "negative frame count");
  Timeline tl;
  if (frames == 0) return tl;

  // Enqueue order follows the standard double-buffered host loop:
  //   up(0); for i: { launch kernel(i); enqueue up(i+1); enqueue down(i); }
  // so the next frame's upload sits ahead of the current download in the
  // copy engine's FIFO, and neither suffers head-of-line blocking behind an
  // op whose dependency is further out.
  double dma_free = 0, kernel_free = 0;
  std::vector<double> upload_end(static_cast<std::size_t>(frames), 0);
  std::vector<double> kernel_end(static_cast<std::size_t>(frames), 0);

  auto schedule_upload = [&](int i) {
    // Needs the DMA engine and its input buffer (two rotate: kernel i-2
    // must have released it).
    double ready = dma_free;
    if (i >= 2)
      ready = std::max(ready, kernel_end[static_cast<std::size_t>(i - 2)]);
    push(tl, TimelineOp::Engine::kDma, i, "up", ready, frame.upload_seconds);
    upload_end[static_cast<std::size_t>(i)] = ready + frame.upload_seconds;
    dma_free = upload_end[static_cast<std::size_t>(i)];
  };

  schedule_upload(0);
  for (int i = 0; i < frames; ++i) {
    const double kstart =
        std::max(upload_end[static_cast<std::size_t>(i)], kernel_free);
    push(tl, TimelineOp::Engine::kKernel, i, "kernel", kstart,
         frame.kernel_seconds);
    kernel_end[static_cast<std::size_t>(i)] = kstart + frame.kernel_seconds;
    kernel_free = kernel_end[static_cast<std::size_t>(i)];

    if (i + 1 < frames) schedule_upload(i + 1);

    const double dstart =
        std::max(kernel_end[static_cast<std::size_t>(i)], dma_free);
    push(tl, TimelineOp::Engine::kDma, i, "down", dstart,
         frame.download_seconds);
    dma_free = dstart + frame.download_seconds;
  }
  return tl;
}

int SharedTimeline::add_stream(int buffers) {
  MOG_CHECK(buffers >= 1, "a stream needs at least one device buffer");
  streams_.push_back(StreamLane{buffers, 0, 0, {}});
  return static_cast<int>(streams_.size()) - 1;
}

SharedTimeline::Window SharedTimeline::schedule_upload(int stream,
                                                       double ready_seconds,
                                                       double seconds) {
  MOG_CHECK(stream >= 0 && stream < num_streams(), "unknown timeline stream");
  MOG_CHECK(ready_seconds >= 0 && seconds >= 0, "negative time");
  StreamLane& lane = streams_[static_cast<std::size_t>(stream)];
  double start = std::max(ready_seconds, dma_free_);
  // Buffer rotation: slot (uploads % buffers) is free once the kernel that
  // consumed upload (uploads - buffers) has completed. The scheduler always
  // launches the consuming kernel before it uploads `buffers` frames ahead,
  // so the release time is known here by construction.
  if (lane.uploads >= static_cast<std::uint64_t>(lane.buffers)) {
    const std::uint64_t reuse_of = lane.uploads -
                                   static_cast<std::uint64_t>(lane.buffers);
    MOG_CHECK(reuse_of < lane.consumed,
              "upload outruns the stream's buffer rotation (kernel for the "
              "reused slot not scheduled yet)");
    start = std::max(
        start, lane.release_seconds[static_cast<std::size_t>(reuse_of)]);
  }
  push(tl_, TimelineOp::Engine::kDma, stream, "up", start, seconds);
  dma_free_ = start + seconds;
  dma_busy_ += seconds;
  ++lane.uploads;
  return Window{start, dma_free_};
}

SharedTimeline::Window SharedTimeline::schedule_kernel(int stream,
                                                       double ready_seconds,
                                                       double seconds,
                                                       int uploads_consumed) {
  MOG_CHECK(stream >= 0 && stream < num_streams(), "unknown timeline stream");
  MOG_CHECK(ready_seconds >= 0 && seconds >= 0, "negative time");
  MOG_CHECK(uploads_consumed >= 1, "a kernel must consume at least one frame");
  StreamLane& lane = streams_[static_cast<std::size_t>(stream)];
  MOG_CHECK(lane.consumed + static_cast<std::uint64_t>(uploads_consumed) <=
                lane.uploads,
            "kernel consumes frames that were never uploaded");
  const double start = std::max(ready_seconds, kernel_free_);
  const double end = start + seconds;
  push(tl_, TimelineOp::Engine::kKernel, stream, "kernel", start, seconds);
  kernel_free_ = end;
  kernel_busy_ += seconds;
  for (int i = 0; i < uploads_consumed; ++i) {
    lane.release_seconds.push_back(end);
    ++lane.consumed;
  }
  return Window{start, end};
}

SharedTimeline::Window SharedTimeline::schedule_download(int stream,
                                                         double ready_seconds,
                                                         double seconds) {
  MOG_CHECK(stream >= 0 && stream < num_streams(), "unknown timeline stream");
  MOG_CHECK(ready_seconds >= 0 && seconds >= 0, "negative time");
  const double start = std::max(ready_seconds, dma_free_);
  push(tl_, TimelineOp::Engine::kDma, stream, "down", start, seconds);
  dma_free_ = start + seconds;
  dma_busy_ += seconds;
  return Window{start, dma_free_};
}

std::string Timeline::ascii(int columns) const {
  MOG_CHECK(columns >= 16, "timeline needs at least 16 columns");
  if (ops.empty() || total_seconds <= 0) return "(empty timeline)\n";
  const double scale = static_cast<double>(columns) / total_seconds;

  std::string dma(static_cast<std::size_t>(columns), '.');
  std::string ker(static_cast<std::size_t>(columns), '.');
  for (const TimelineOp& op : ops) {
    std::string& row = op.engine == TimelineOp::Engine::kDma ? dma : ker;
    int lo = static_cast<int>(op.start_seconds * scale);
    int hi = static_cast<int>(op.end_seconds * scale);
    lo = std::clamp(lo, 0, columns - 1);
    hi = std::clamp(hi, lo + 1, columns);
    char glyph = 'K';
    if (op.kind[0] == 'u') glyph = 'U';
    if (op.kind[0] == 'd') glyph = 'D';
    for (int c = lo; c < hi; ++c)
      row[static_cast<std::size_t>(c)] = glyph;
  }
  std::string out;
  out += "DMA |" + dma + "|\n";
  out += "KER |" + ker + "|\n";
  return out;
}

}  // namespace mog::gpusim
