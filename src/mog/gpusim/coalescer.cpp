#include "mog/gpusim/coalescer.hpp"

#include <algorithm>
#include <bit>

#include "mog/common/error.hpp"
#include "mog/gpusim/timing_constants.hpp"
#include "mog/obs/sampler.hpp"

namespace mog::gpusim {

namespace {

/// Bitmask with the low `bytes` bits set; `bytes` must be ≤ 64 (checked at
/// Coalescer construction for the store-segment width, the only consumer).
inline std::uint64_t byte_mask(std::uint64_t bytes) {
  return bytes >= 64 ? ~0ull : (1ull << bytes) - 1;
}

}  // namespace

SegmentCache::SegmentCache(int capacity) : capacity_(capacity) {
  MOG_CHECK(capacity >= 1 && capacity <= 16,
            "segment cache capacity must be in [1, 16]");
  clear();
}

void SegmentCache::clear() {
  size_ = 0;
  std::fill(std::begin(lines_), std::end(lines_), ~0ull);
}

namespace {

/// log2 of `v` when it is a power of two, -1 otherwise (division fallback).
inline int shift_of(int v) {
  const auto u = static_cast<unsigned>(v);
  return std::has_single_bit(u) ? std::countr_zero(u) : -1;
}

}  // namespace

Coalescer::Coalescer(const DeviceSpec& spec, int effective_l1_segments)
    : load_segment_bytes_(spec.load_segment_bytes),
      store_segment_bytes_(spec.store_segment_bytes),
      page_bytes_(spec.dram_page_bytes),
      load_seg_shift_(shift_of(spec.load_segment_bytes)),
      store_seg_shift_(shift_of(spec.store_segment_bytes)),
      page_shift_(shift_of(spec.dram_page_bytes)),
      l1_(effective_l1_segments) {
  MOG_CHECK(spec.store_segment_bytes >= 1 && spec.store_segment_bytes <= 64,
            "store coverage bitmask requires store segments of at most "
            "64 bytes");
}

void Coalescer::begin_warp() {
  l1_.clear();
  // Open DRAM rows deliberately persist: row locality spans warps.
}

void Coalescer::reset() {
  l1_.clear();
  rows_ = DramRowLru{};
  page_trace_ = nullptr;
}

void Coalescer::access(Kind kind, std::span<const std::uint64_t> addrs,
                       unsigned bytes_per_lane, KernelStats& stats) {
  if (addrs.empty()) return;
  const obs::ProfSpan prof_span{obs::ProfTag::kCoalescerAccess};
  const bool is_load = kind == Kind::kLoad;
  const unsigned seg_bytes = static_cast<unsigned>(
      is_load ? load_segment_bytes_ : store_segment_bytes_);
  const int seg_shift = is_load ? load_seg_shift_ : store_seg_shift_;
  const auto seg_of = [seg_bytes, seg_shift](std::uint64_t a) {
    return seg_shift >= 0 ? a >> seg_shift : a / seg_bytes;
  };

  // Collect the distinct segments the active lanes touch, with per-segment
  // byte coverage. An element may straddle a segment boundary (unaligned
  // AoS doubles), so both endpoints are folded in. 32 lanes × ≤2 segments
  // keeps this a small local array. Coverage is a byte bitmask so lanes
  // writing overlapping or duplicate addresses count each byte once —
  // summing per-lane extents would let 32 lanes storing the same word claim
  // 128 bytes of a 32-byte segment and mask the ECC read-modify-write
  // charge below. Only stores consume coverage; loads skip the bookkeeping.
  //
  std::uint64_t segs[2 * kWarpSize];
  std::uint64_t covered[2 * kWarpSize];
  int n = 0;
  const auto cover = [&](int j, std::uint64_t a, std::uint64_t s) {
    const std::uint64_t lo = std::max(a, s * seg_bytes) - s * seg_bytes;
    const std::uint64_t hi =
        std::min(a + bytes_per_lane, (s + 1) * seg_bytes) - s * seg_bytes;
    covered[j] |= byte_mask(hi - lo) << lo;
  };
  // Warp memory instructions overwhelmingly issue non-decreasing lane
  // addresses (SoA streams and uniform-stride AoS gathers alike), making
  // the segment sequence non-decreasing too — then comparing against the
  // last-recorded segment is a complete dedupe. Detect that cheaply and
  // keep the general path (arbitrary scatter) on a small open-addressed
  // index table instead of a per-lane linear scan (O(n²) across the warp).
  bool monotone = true;
  for (std::size_t i = 1; i < addrs.size(); ++i)
    monotone &= addrs[i] >= addrs[i - 1];
  // Distinct 128-byte L1 lines touched, for the LSU instruction-replay
  // charge below. On the monotone path they are counted as boundary
  // crossings in the same pass as the segments; the scatter path dedupes
  // with a sorted-insertion pass afterwards.
  int replay_lines = 0;
  if (monotone) {
    std::uint64_t prev_line = 0;
    for (const std::uint64_t a : addrs) {
      const std::uint64_t first = seg_of(a);
      const std::uint64_t last = seg_of(a + bytes_per_lane - 1);
      for (std::uint64_t s = first; s <= last; ++s) {
        if (n == 0 || segs[n - 1] != s) {
          segs[n] = s;
          covered[n] = 0;
          ++n;
        }
        if (!is_load) cover(n - 1, a, s);
      }
      // prev_line is the highest line counted so far; with non-decreasing
      // addresses any line ≤ prev_line was already touched by an earlier
      // element (whose interval reached prev_line), so "new" is exactly
      // "> prev_line" — including line_last when consecutive elements
      // straddle the same boundary.
      const std::uint64_t line_first = a / 128;
      const std::uint64_t line_last = (a + bytes_per_lane - 1) / 128;
      if (replay_lines == 0 || line_first > prev_line) {
        ++replay_lines;
        prev_line = line_first;
      }
      if (line_last > prev_line) {
        ++replay_lines;
        prev_line = line_last;
      }
    }
  } else {
    // slot[] maps a segment hash to its position in segs[]+1. n ≤ 64
    // against 128 slots keeps probes short, and segs[] still records
    // first-touch order — the L1 lookup below is an LRU, so segment visit
    // order is semantically load-bearing.
    std::uint8_t slot[128] = {};
    for (const std::uint64_t a : addrs) {
      const std::uint64_t first = seg_of(a);
      const std::uint64_t last = seg_of(a + bytes_per_lane - 1);
      for (std::uint64_t s = first; s <= last; ++s) {
        int j;
        if (n > 0 && segs[n - 1] == s) {
          j = n - 1;
        } else {
          std::uint64_t h = s & 127u;
          while (slot[h] != 0 && segs[slot[h] - 1] != s) h = (h + 1) & 127u;
          if (slot[h] == 0) {
            segs[n] = s;
            covered[n] = 0;
            slot[h] = static_cast<std::uint8_t>(n + 1);
            j = n++;
          } else {
            j = slot[h] - 1;
          }
        }
        if (!is_load) cover(j, a, s);
      }
    }
    // Replay-line dedupe for the scatter path: only the count of distinct
    // lines matters, so a sorted-insertion pass replaces the historical
    // sort+unique.
    std::uint64_t lines[2 * kWarpSize];
    int m = 0;
    const auto add_line = [&lines, &m](std::uint64_t v) {
      int k = m;
      while (k > 0 && lines[k - 1] > v) --k;
      if (k > 0 && lines[k - 1] == v) return;  // duplicate line
      for (int t = m; t > k; --t) lines[t] = lines[t - 1];
      lines[k] = v;
      ++m;
    };
    for (const std::uint64_t a : addrs) {
      add_line(a / 128);
      const std::uint64_t last = (a + bytes_per_lane - 1) / 128;
      if (last != a / 128) add_line(last);
    }
    replay_lines = m;
  }

  const std::uint64_t requested =
      static_cast<std::uint64_t>(addrs.size()) * bytes_per_lane;
  std::uint64_t transactions = 0;
  std::uint64_t rmw_reads = 0;

  for (int i = 0; i < n; ++i) {
    if (is_load && l1_.access(segs[i])) continue;  // L1 hit: no traffic
    ++transactions;
    // ECC read-modify-write: the C2075 runs with ECC on, so a store that
    // covers only part of a segment forces the memory system to read the
    // segment, merge, and write it back — the hidden cost of masked,
    // scattered stores that the predicated variants avoid.
    if (!is_load && covered[i] != byte_mask(seg_bytes)) ++rmw_reads;
    const std::uint64_t seg_base = segs[i] * seg_bytes;
    const std::uint64_t page = page_shift_ >= 0
                                   ? seg_base >> page_shift_
                                   : seg_base / page_bytes_;
    if (page_trace_ != nullptr)
      page_trace_->push_back(page);
    else if (!rows_.access(page))
      ++stats.dram_page_switches;
  }

  // Instruction replay: the LSU re-issues the instruction once per 128-byte
  // L1 line beyond the first, regardless of access kind (store segments are
  // 32 B for traffic purposes, but replay granularity is the line).
  if (replay_lines > 1) {
    stats.issue_cycles +=
        static_cast<std::uint64_t>(replay_lines - 1) * kCyclesLsuReplay;
  }

  if (is_load) {
    ++stats.load_instructions;
    stats.load_transactions += transactions;
    stats.bytes_requested_load += requested;
    stats.bytes_transferred_load += transactions * seg_bytes;
  } else {
    ++stats.store_instructions;
    stats.store_transactions += transactions;
    stats.rmw_transactions += rmw_reads;
    stats.bytes_requested_store += requested;
    stats.bytes_transferred_store +=
        (transactions + rmw_reads) * seg_bytes;
  }
}

}  // namespace mog::gpusim
