#include "mog/gpusim/coalescer.hpp"

#include <algorithm>

#include "mog/common/error.hpp"
#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

namespace {

/// Bitmask with the low `bytes` bits set; `bytes` must be ≤ 64 (checked at
/// Coalescer construction for the store-segment width, the only consumer).
inline std::uint64_t byte_mask(std::uint64_t bytes) {
  return bytes >= 64 ? ~0ull : (1ull << bytes) - 1;
}

}  // namespace

SegmentCache::SegmentCache(int capacity) : capacity_(capacity) {
  MOG_CHECK(capacity >= 1 && capacity <= 16,
            "segment cache capacity must be in [1, 16]");
  clear();
}

void SegmentCache::clear() {
  size_ = 0;
  std::fill(std::begin(lines_), std::end(lines_), ~0ull);
}

bool SegmentCache::access(std::uint64_t segment_id) {
  // MRU-first linear scan; on hit, move to front.
  for (int i = 0; i < size_; ++i) {
    if (lines_[i] == segment_id) {
      for (int j = i; j > 0; --j) lines_[j] = lines_[j - 1];
      lines_[0] = segment_id;
      return true;
    }
  }
  // Miss: shift and insert at front, evicting the LRU tail.
  if (size_ < capacity_) ++size_;
  for (int j = size_ - 1; j > 0; --j) lines_[j] = lines_[j - 1];
  lines_[0] = segment_id;
  return false;
}

Coalescer::Coalescer(const DeviceSpec& spec, int effective_l1_segments)
    : load_segment_bytes_(spec.load_segment_bytes),
      store_segment_bytes_(spec.store_segment_bytes),
      page_bytes_(spec.dram_page_bytes),
      l1_(effective_l1_segments) {
  MOG_CHECK(spec.store_segment_bytes >= 1 && spec.store_segment_bytes <= 64,
            "store coverage bitmask requires store segments of at most "
            "64 bytes");
}

void Coalescer::begin_warp() {
  l1_.clear();
  // Open DRAM rows deliberately persist: row locality spans warps.
}

bool DramRowLru::access(std::uint64_t page) {
  for (int i = 0; i < open_count_; ++i) {
    if (open_rows_[i] == page) {
      for (int j = i; j > 0; --j) open_rows_[j] = open_rows_[j - 1];
      open_rows_[0] = page;
      return true;
    }
  }
  if (open_count_ < kOpenRows) ++open_count_;
  for (int j = open_count_ - 1; j > 0; --j) open_rows_[j] = open_rows_[j - 1];
  open_rows_[0] = page;
  return false;
}

void Coalescer::access(Kind kind, std::span<const std::uint64_t> addrs,
                       unsigned bytes_per_lane, KernelStats& stats) {
  if (addrs.empty()) return;
  const bool is_load = kind == Kind::kLoad;
  const unsigned seg_bytes = static_cast<unsigned>(
      is_load ? load_segment_bytes_ : store_segment_bytes_);

  // Collect the distinct segments the active lanes touch, with per-segment
  // byte coverage. An element may straddle a segment boundary (unaligned
  // AoS doubles), so both endpoints are folded in. 32 lanes × ≤2 segments
  // keeps this a small local array. Coverage is a byte bitmask so lanes
  // writing overlapping or duplicate addresses count each byte once —
  // summing per-lane extents would let 32 lanes storing the same word claim
  // 128 bytes of a 32-byte segment and mask the ECC read-modify-write
  // charge below. Only stores consume coverage; loads skip the bookkeeping.
  std::uint64_t segs[2 * kWarpSize];
  std::uint64_t covered[2 * kWarpSize];
  int n = 0;
  for (const std::uint64_t a : addrs) {
    const std::uint64_t first = a / seg_bytes;
    const std::uint64_t last = (a + bytes_per_lane - 1) / seg_bytes;
    for (std::uint64_t s = first; s <= last; ++s) {
      int j = 0;
      while (j < n && segs[j] != s) ++j;
      if (j == n) {
        segs[n] = s;
        covered[n] = 0;
        ++n;
      }
      if (!is_load) {
        const std::uint64_t lo = std::max(a, s * seg_bytes) - s * seg_bytes;
        const std::uint64_t hi =
            std::min(a + bytes_per_lane, (s + 1) * seg_bytes) - s * seg_bytes;
        covered[j] |= byte_mask(hi - lo) << lo;
      }
    }
  }

  const std::uint64_t requested =
      static_cast<std::uint64_t>(addrs.size()) * bytes_per_lane;
  std::uint64_t transactions = 0;
  std::uint64_t rmw_reads = 0;

  for (int i = 0; i < n; ++i) {
    if (is_load && l1_.access(segs[i])) continue;  // L1 hit: no traffic
    ++transactions;
    // ECC read-modify-write: the C2075 runs with ECC on, so a store that
    // covers only part of a segment forces the memory system to read the
    // segment, merge, and write it back — the hidden cost of masked,
    // scattered stores that the predicated variants avoid.
    if (!is_load && covered[i] != byte_mask(seg_bytes)) ++rmw_reads;
    const std::uint64_t page = segs[i] * seg_bytes / page_bytes_;
    if (page_trace_ != nullptr)
      page_trace_->push_back(page);
    else if (!rows_.access(page))
      ++stats.dram_page_switches;
  }

  // Instruction replay: the LSU re-issues the instruction once per 128-byte
  // L1 line beyond the first, regardless of access kind (store segments are
  // 32 B for traffic purposes, but replay granularity is the line).
  {
    std::uint64_t lines[2 * kWarpSize];
    int m = 0;
    for (const std::uint64_t a : addrs) {
      lines[m++] = a / 128;
      const std::uint64_t last = (a + bytes_per_lane - 1) / 128;
      if (last != lines[m - 1]) lines[m++] = last;
    }
    std::sort(lines, lines + m);
    m = static_cast<int>(std::unique(lines, lines + m) - lines);
    if (m > 1) {
      stats.issue_cycles +=
          static_cast<std::uint64_t>(m - 1) * kCyclesLsuReplay;
    }
  }

  if (is_load) {
    ++stats.load_instructions;
    stats.load_transactions += transactions;
    stats.bytes_requested_load += requested;
    stats.bytes_transferred_load += transactions * seg_bytes;
  } else {
    ++stats.store_instructions;
    stats.store_transactions += transactions;
    stats.rmw_transactions += rmw_reads;
    stats.bytes_requested_store += requested;
    stats.bytes_transferred_store +=
        (transactions + rmw_reads) * seg_bytes;
  }
}

}  // namespace mog::gpusim
