#include "mog/gpusim/kernel_launch.hpp"

#include "mog/gpusim/timing_constants.hpp"

namespace mog::gpusim {

BlockCtx::BlockCtx(std::int64_t block_id, int threads_in_block,
                   int threads_per_block, KernelStats& stats,
                   Coalescer& coalescer,
                   std::vector<std::byte>& shared_arena)
    : block_id_(block_id),
      threads_in_block_(threads_in_block),
      threads_per_block_(threads_per_block),
      stats_(stats),
      coalescer_(coalescer),
      shared_arena_(shared_arena) {}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)), memory_() {
  worker_arena(0);  // the launching thread's arena always exists
}

Device::WorkerState::WorkerState(const DeviceSpec& spec)
    : coalescer{spec, kEffectiveL1SegmentsPerWarp} {}

void Device::validate(const LaunchConfig& config) const {
  MOG_CHECK(config.num_threads >= 1, "launch needs at least one thread");
  MOG_CHECK(config.threads_per_block >= kWarpSize &&
                config.threads_per_block <= spec_.max_threads_per_block,
            "threads_per_block out of device range");
  MOG_CHECK(config.threads_per_block % kWarpSize == 0,
            "threads_per_block must be a multiple of the warp size");
}

std::vector<std::byte>& Device::worker_arena(int worker) {
  while (worker_arenas_.size() <= static_cast<std::size_t>(worker))
    worker_arenas_.emplace_back(
        static_cast<std::size_t>(spec_.shared_mem_per_sm));
  return worker_arenas_[static_cast<std::size_t>(worker)];
}

KernelStats Device::run_blocks(
    const LaunchConfig& config,
    const std::function<void(BlockCtx&)>& block_fn) {
  const obs::ProfSpan launch_span{obs::ProfTag::kKernelLaunch};
  KernelStats stats;
  stats.threads_per_block = config.threads_per_block;
  const std::int64_t blocks =
      (config.num_threads + config.threads_per_block - 1) /
      config.threads_per_block;
  stats.num_blocks = static_cast<std::uint64_t>(blocks);

  // Per-worker private accumulation state, persistent across launches (see
  // WorkerState in the header). Everything a kernel touches outside device
  // memory is either per-worker (stats, coalescer, arena) or per-block
  // (BlockCtx), so kernel callables never contend; device memory itself is
  // safe because blocks only write locations owned by their own threads.
  const int pool =
      blocks > 1 ? resolved_executor_threads(spec_.executor_threads) : 1;
  while (workers_.size() < static_cast<std::size_t>(pool)) {
    workers_.emplace_back(spec_);
    worker_arena(static_cast<int>(workers_.size()) - 1);
  }
  for (int w = 0; w < pool; ++w) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.stats = KernelStats{};
    ws.coalescer.reset();  // cold caches + inline row accounting
    ws.peak_reg_words = 0;
    ws.page_trace.clear();
  }

  // DRAM open-row state spans blocks in the serial model. A parallel launch
  // therefore never counts switches inline: each worker records the page id
  // of every DRAM-bound transaction in its flat trace arena, block_spans_
  // remembers which slice each block produced, and the traces replay below
  // in block order through one DramRowLru — reproducing the serial counts
  // exactly regardless of thread count or block-to-worker assignment. A
  // serial launch (pool == 1) skips tracing entirely: its single worker
  // visits blocks in block order with a freshly reset open-row LRU, so
  // inline accounting already sees the transactions in replay order.
  const bool traced = pool > 1;
  if (traced) {
    block_spans_.assign(static_cast<std::size_t>(blocks), TraceSpan{});
    for (int w = 0; w < pool; ++w)
      workers_[static_cast<std::size_t>(w)].coalescer.set_page_trace(
          &workers_[static_cast<std::size_t>(w)].page_trace);
  }

  // Per-block counter deltas are only assembled when a sink asks (heatmap
  // capture); the common path pays one bool. The callbacks run on whichever
  // worker executed the block — StatsSink::on_block_stats documents the
  // concurrency contract.
  const bool block_stats =
      stats_sink_ != nullptr && stats_sink_->wants_block_stats();

  const auto run_one = [&](std::int64_t b, int w) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    const int threads_in_block = static_cast<int>(std::min<std::int64_t>(
        config.threads_per_block,
        config.num_threads - b * config.threads_per_block));
    const std::size_t trace_begin = ws.page_trace.size();
    KernelStats before;
    if (block_stats) before = ws.stats;
    BlockCtx blk{b, threads_in_block, config.threads_per_block, ws.stats,
                 ws.coalescer, worker_arenas_[static_cast<std::size_t>(w)]};
    block_fn(blk);
    if (traced)
      block_spans_[static_cast<std::size_t>(b)] =
          TraceSpan{w, trace_begin, ws.page_trace.size()};
    if (blk.peak_reg_words() > ws.peak_reg_words)
      ws.peak_reg_words = blk.peak_reg_words();
    if (block_stats) {
      BlockStats record;
      record.block_id = b;
      record.first_thread = b * config.threads_per_block;
      record.threads = threads_in_block;
      record.delta = ws.stats.counters_since(before);
      record.delta.num_blocks = 1;
      stats_sink_->on_block_stats(record);
    }
  };

  if (pool == 1) {
    for (std::int64_t b = 0; b < blocks; ++b) run_one(b, 0);
  } else {
    if (executor_ == nullptr || executor_->num_threads() != pool)
      executor_ = std::make_unique<BlockExecutor>(pool);
    executor_->run(blocks, run_one);
  }

  // Deterministic reduction: fold per-worker stats in worker order. Every
  // merged field is an integer sum or max, so the totals are independent of
  // which worker executed which block.
  int peak_reg_words = 0;
  {
    const obs::ProfSpan merge_span{obs::ProfTag::kStatsMerge};
    for (int w = 0; w < pool; ++w) {
      WorkerState& ws = workers_[static_cast<std::size_t>(w)];
      stats += ws.stats;
      if (ws.peak_reg_words > peak_reg_words)
        peak_reg_words = ws.peak_reg_words;
    }
  }

  if (traced) {
    const obs::ProfSpan replay_span{obs::ProfTag::kDramRowReplay};
    DramRowLru rows;
    for (const TraceSpan& span : block_spans_) {
      const auto& trace =
          workers_[static_cast<std::size_t>(span.worker)].page_trace;
      for (std::size_t i = span.begin; i < span.end; ++i)
        if (!rows.access(trace[i])) ++stats.dram_page_switches;
    }
  }

  stats.regs_per_thread = std::min(
      static_cast<int>(peak_reg_words * kRegisterPressureScale + 0.5) +
          kAbiRegisterWords,
      spec_.max_registers_per_thread);
  if (stats_sink_ != nullptr) stats_sink_->on_kernel_launch(stats);
  return stats;
}

}  // namespace mog::gpusim
