#include "mog/gpusim/kernel_launch.hpp"

namespace mog::gpusim {

BlockCtx::BlockCtx(std::int64_t block_id, int threads_in_block,
                   int threads_per_block, KernelStats& stats,
                   Coalescer& coalescer,
                   std::vector<std::byte>& shared_arena)
    : block_id_(block_id),
      threads_in_block_(threads_in_block),
      threads_per_block_(threads_per_block),
      stats_(stats),
      coalescer_(coalescer),
      shared_arena_(shared_arena) {}

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)),
      memory_(),
      shared_arena_(static_cast<std::size_t>(spec_.shared_mem_per_sm)) {}

void Device::validate(const LaunchConfig& config) const {
  MOG_CHECK(config.num_threads >= 1, "launch needs at least one thread");
  MOG_CHECK(config.threads_per_block >= kWarpSize &&
                config.threads_per_block <= spec_.max_threads_per_block,
            "threads_per_block out of device range");
  MOG_CHECK(config.threads_per_block % kWarpSize == 0,
            "threads_per_block must be a multiple of the warp size");
}

}  // namespace mog::gpusim
