#include "mog/gpusim/block_executor.hpp"

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"
#include "mog/obs/sampler.hpp"

namespace mog::gpusim {

BlockExecutor::BlockExecutor(int num_threads) {
  MOG_CHECK(num_threads >= 1 && num_threads <= 64,
            "executor thread count must be in [1, 64]");
  for (int w = 1; w < num_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

BlockExecutor::~BlockExecutor() {
  {
    std::lock_guard lk{mu_};
    shutting_down_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void BlockExecutor::worker_loop(int worker) {
  obs::prof_set_thread_name(strprintf("exec%d", worker).c_str());
  std::uint64_t seen = 0;
  while (true) {
    {
      const obs::ProfSpan wait_span{obs::ProfTag::kQueueWait};
      std::unique_lock lk{mu_};
      cv_start_.wait(lk, [&] { return generation_ != seen || shutting_down_; });
      if (shutting_down_) return;
      seen = generation_;
    }
    drain(worker);
    {
      std::lock_guard lk{mu_};
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void BlockExecutor::drain(int worker) {
  while (!failed_.load(std::memory_order_relaxed)) {
    const std::int64_t b = next_block_.fetch_add(1, std::memory_order_relaxed);
    if (b >= num_blocks_) return;
    try {
      (*fn_)(b, worker);
    } catch (...) {
      std::lock_guard lk{err_mu_};
      if (first_error_ == nullptr || b < first_error_block_) {
        first_error_ = std::current_exception();
        first_error_block_ = b;
      }
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void BlockExecutor::run(std::int64_t num_blocks, const BlockFn& fn) {
  if (num_blocks <= 0) return;
  fn_ = &fn;
  num_blocks_ = num_blocks;
  next_block_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  {
    std::lock_guard lk{mu_};
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  drain(0);
  {
    std::unique_lock lk{mu_};
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  fn_ = nullptr;
  if (first_error_ != nullptr) std::rethrow_exception(first_error_);
}

}  // namespace mog::gpusim
