// Simulated GPU global memory.
//
// Allocations carry *virtual device addresses* from a bump allocator — the
// coalescing analyzer reasons about those addresses (segment and DRAM-page
// boundaries), while functional reads and writes go straight to host-side
// backing storage. Buffers are backed independently, so a 6 GB device can be
// modeled without reserving 6 GB of host RAM.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mog/common/error.hpp"

namespace mog::gpusim {

/// Typed view of a device allocation: host pointer for functional access +
/// device virtual address for the memory-system model.
template <typename T>
struct DevSpan {
  T* data = nullptr;
  std::uint64_t dev_addr = 0;  ///< virtual device byte address of element 0
  std::size_t count = 0;

  bool valid() const { return data != nullptr; }

  DevSpan subspan(std::size_t offset, std::size_t n) const {
    MOG_CHECK(offset + n <= count, "subspan out of range");
    return DevSpan{data + offset, dev_addr + offset * sizeof(T), n};
  }
  std::uint64_t addr_of(std::size_t i) const {
    return dev_addr + i * sizeof(T);
  }
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::size_t capacity_bytes = 6ull << 30);

  /// Allocate `count` elements of T, 256-byte aligned (cudaMalloc-like).
  template <typename T>
  DevSpan<T> alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    void* host = raw_alloc(bytes);
    const std::uint64_t addr = assign_addr(bytes);
    return DevSpan<T>{static_cast<T*>(host), addr, count};
  }

  std::size_t bytes_allocated() const { return next_addr_ - kBaseAddr; }
  std::size_t capacity() const { return capacity_; }

 private:
  void* raw_alloc(std::size_t bytes);
  std::uint64_t assign_addr(std::size_t bytes);

  static constexpr std::uint64_t kBaseAddr = 0x0010'0000;  // nonzero base
  static constexpr std::size_t kAlign = 256;

  std::size_t capacity_;
  std::uint64_t next_addr_ = kBaseAddr;
  std::vector<std::unique_ptr<std::byte[]>> buffers_;
};

/// Host <-> device copy helpers. Functionally a memcpy; they return the byte
/// count so callers can feed the transfer model.
template <typename T>
std::size_t copy_to_device(DevSpan<T> dst, const T* src, std::size_t count) {
  MOG_CHECK(count <= dst.count, "copy_to_device overflows destination");
  std::copy(src, src + count, dst.data);
  return count * sizeof(T);
}

template <typename T>
std::size_t copy_from_device(T* dst, DevSpan<T> src, std::size_t count) {
  MOG_CHECK(count <= src.count, "copy_from_device overflows source");
  std::copy(src.data, src.data + count, dst);
  return count * sizeof(T);
}

}  // namespace mog::gpusim
