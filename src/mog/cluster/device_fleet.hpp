// Multi-device fleet: N simulated devices behind one serving front end.
//
// A DeviceFleet owns N device nodes. Each node is a full single-device
// serving plane — a serve::StreamServer with its own gpusim::SharedTimeline
// (DMA + compute engines), its own device-memory admission budget, its own
// pump, and optionally its own fault::FaultInjector. The injector makes the
// node a *fault domain*: every stream placed on the node shares it, so an
// injected device failure correlates across exactly the streams that live
// there and no others — the "one device dies, its cameras fail over, the
// rest of the fleet never notices" production story.
//
// Placement: streams are admitted through a ClusterScheduler —
// least-loaded first with a consistent-hash tiebreak (placement.hpp) — and
// rebalance naturally on admission because every open_stream() consults the
// live load vector.
//
// Live migration (the headline robustness mechanism): when a device is
// declared lost — explicitly via fail_device(), or automatically when
// streams on it take degradation strikes from repeated launch/transfer
// failures — every stream it hosts is moved to a healthy device:
//
//   1. freeze   — steal the stream's queued frames (stamps and trace
//                 tickets preserved), flush its partial tiled group;
//   2. snapshot — round-trip the MoG model through the MOGM v2 CRC
//                 checkpoint encoding (serialize_model/deserialize_model).
//                 A corrupt snapshot is *rejected by type* (ModelIoError),
//                 retried from a fresh device read, and only as a last
//                 resort replaced by a fresh model;
//   3. resume   — open a stream on the target (same GPU config, so a
//                 degraded victim returns to its full tier), adopt the
//                 restored model, requeue the stolen frames in order.
//
// Degradation order, fleet-wide: healthy GPU tier -> migrate to another
// device -> (no capacity anywhere) ride the per-stream ladder down to CPU
// in place. Admitted frames are never dropped by a failover; a migration is
// observable in MigrationStats, the obs log, and /metrics.
//
// Observability: the fleet serves aggregated /metrics (per-device families
// + fleet-level migration counters + a devices-spanning latency histogram),
// /healthz (per-device and per-stream verdicts; 503 while any admitted
// stream is off-GPU or model-drifted), and /statusz.
//
// Thread safety: public methods lock the fleet mutex; member servers have
// their own locks (always acquired after the fleet's, never the reverse).
// start()/stop() run every member pump on its own thread plus one fleet
// supervisor thread that watches for device loss and migrates in the
// background; deterministic callers use pump()/drain() synchronously.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mog/cluster/placement.hpp"
#include "mog/serve/stream_server.hpp"

namespace mog::cluster {

struct FleetConfig {
  int devices = 2;  ///< device nodes (each a full serving plane)

  /// Template applied to every device node. obs_port is ignored for members
  /// (the fleet owns the observability endpoint — set FleetConfig::obs_port).
  serve::ServeConfig serve;

  int vnodes_per_device = 64;  ///< consistent-hash ring smoothing

  /// Degradation strikes (streams stepping down the recovery ladder) charged
  /// to a device before it is declared lost and evacuated.
  int device_loss_strikes = 1;

  /// Migrate streams off lost devices. Off = streams ride the per-stream
  /// CPU ladder in place (the pre-fleet behavior).
  bool auto_migrate = true;

  /// Fleet-level observability endpoint (/metrics, /healthz, /statusz);
  /// -1 disables, 0 binds an ephemeral loopback port.
  int obs_port = -1;

  void validate() const;
};

/// Counters for every migration action, comparable for deterministic tests.
struct MigrationStats {
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t checkpoint_rejected = 0;  ///< snapshot failed typed decode
  std::uint64_t snapshot_retries = 0;     ///< re-read after a rejection
  std::uint64_t models_reset = 0;         ///< last resort: fresh model
  std::uint64_t capacity_exhausted = 0;   ///< no healthy device could admit
  std::uint64_t frames_requeued = 0;      ///< queued frames moved along
  std::uint64_t frames_dropped_in_transit = 0;  ///< refused by target queue

  bool operator==(const MigrationStats&) const = default;
  std::string summary() const;
};

/// Fleet-level view of one stream.
struct FleetStreamInfo {
  int device = -1;                  ///< current hosting device
  bool open = true;
  std::uint64_t migrations = 0;     ///< times this stream failed over
  fault::ExecutionTier tier = fault::ExecutionTier::kTiledGpu;
  std::uint64_t masks_delivered = 0;  ///< across all incarnations
  serve::StreamStats serve;           ///< current incarnation's stats
};

template <typename T>
class DeviceFleet {
 public:
  using GpuConfig = typename serve::StreamServer<T>::GpuConfig;

  explicit DeviceFleet(const FleetConfig& config);
  ~DeviceFleet();

  DeviceFleet(const DeviceFleet&) = delete;
  DeviceFleet& operator=(const DeviceFleet&) = delete;

  /// Install a device node's fault domain: every stream subsequently placed
  /// on device `d` without its own injector shares this one. Call before
  /// opening streams on the device.
  void set_device_injector(int d,
                           std::shared_ptr<fault::FaultInjector> injector);

  /// Admit a stream onto the least-loaded device (consistent-hash
  /// tiebreak on `placement_key`; empty derives a key from the stream id).
  /// A stream-scoped `injector` (a sick camera) follows the stream across
  /// migrations; without one the stream joins its device's fault domain.
  /// Throws serve::AdmissionError when every alive device refuses it.
  int open_stream(const GpuConfig& gpu_config,
                  std::shared_ptr<fault::FaultInjector> injector = nullptr,
                  std::string placement_key = {});

  void close_stream(int id);

  /// Offer one frame to stream `id`. Thread-safe; routes to the stream's
  /// current device (atomically with respect to migration). A nonzero
  /// `ticket` is a pre-minted obs trace ticket from a decode front end
  /// (see StreamServer::submit).
  bool submit(int id, FrameU8 frame, double arrival_seconds = 0,
              std::uint64_t ticket = 0);

  /// Pump every device one round, then supervise: charge degradation
  /// strikes, declare lost devices, migrate their streams. Returns frames
  /// ingested across the fleet this round.
  int pump();

  /// Pump until every queue is drained and every owed mask is delivered.
  void drain();

  /// Background mode: every member pump thread plus the fleet supervisor.
  void start();
  void stop();

  /// Operator/chaos entry point: declare device `d` lost now and (with
  /// auto_migrate) evacuate its streams.
  void fail_device(int d);

  int devices() const;
  int alive_devices() const;
  bool device_alive(int d) const;
  int stream_device(int id) const;  ///< current placement of stream `id`

  /// Masks delivered for stream `id` in arrival order, spanning migrations.
  std::vector<FrameU8> take_masks(int id);

  FleetStreamInfo stream_info(int id) const;
  const MigrationStats& migration_stats() const;

  telemetry::Rollup latency_rollup(int id) const;
  telemetry::Rollup aggregate_latency_rollup() const;
  std::uint64_t masks_delivered() const;  ///< fleet-wide
  std::uint64_t frames_dropped() const;   ///< fleet-wide queue drops
  double makespan_seconds() const;        ///< slowest device's clock

  /// Member server access (tests, benches). The fleet owns it; treat as
  /// read-mostly and never hold references across pump()/migration.
  serve::StreamServer<T>& device_server(int d);
  const serve::StreamServer<T>& device_server(int d) const;

  const FleetConfig& config() const { return config_; }

  // --- observability plane -------------------------------------------------
  std::string metrics_text() const;
  bool healthz(std::string& detail) const;
  std::string statusz() const;
  std::string summary() const;
  int obs_port() const { return obs_http_.port(); }

  /// Test hook: mutate the serialized snapshot between encode and decode
  /// (models checkpoint bit rot on the migration hot path).
  void set_snapshot_corruptor(
      std::function<void(std::vector<std::uint8_t>&)> corruptor);

 private:
  struct DeviceNode {
    std::unique_ptr<serve::StreamServer<T>> server;
    std::shared_ptr<fault::FaultInjector> injector;  ///< fault domain
    bool alive = true;
    int strikes = 0;
    std::uint64_t migrations_in = 0;
    std::uint64_t migrations_out = 0;
  };

  struct StreamRec {
    bool open = true;
    int device = -1;
    int local_id = -1;
    GpuConfig gpu;
    std::shared_ptr<fault::FaultInjector> own_injector;
    std::string key;
    std::uint64_t migrations = 0;
    fault::ExecutionTier last_tier = fault::ExecutionTier::kGpuDirect;
    /// History carried across migrations (prior incarnations).
    std::vector<FrameU8> mask_stash;
    std::vector<double> latency_stash;
    std::uint64_t masks_stash = 0;
  };

  StreamRec& rec_at(int id);
  const StreamRec& rec_at(int id) const;
  std::vector<DeviceLoad> loads_locked(int exclude_device = -1) const;
  int open_on_some_device_locked(StreamRec& rec, int exclude_device);
  int pump_locked();
  void supervise_locked();
  void declare_lost_locked(int d, const char* reason);
  bool migrate_stream_locked(int id);
  void start_obs_server();
  std::string metrics_text_locked() const;
  bool healthz_locked(std::string& detail) const;
  std::string statusz_locked() const;

  FleetConfig config_;
  mutable std::mutex mu_;
  std::vector<DeviceNode> nodes_;
  std::vector<StreamRec> recs_;
  ClusterScheduler scheduler_;
  MigrationStats migration_stats_;
  std::function<void(std::vector<std::uint8_t>&)> snapshot_corruptor_;
  obs::ScopedLogger log_{"cluster"};
  obs::HttpServer obs_http_;

  std::thread supervisor_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
};

extern template class DeviceFleet<float>;
extern template class DeviceFleet<double>;

}  // namespace mog::cluster
