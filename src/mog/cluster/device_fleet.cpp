#include "mog/cluster/device_fleet.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "mog/common/strutil.hpp"
#include "mog/cpu/model_io.hpp"
#include "mog/obs/flame.hpp"
#include "mog/obs/prometheus.hpp"
#include "mog/telemetry/telemetry.hpp"

namespace mog::cluster {

void FleetConfig::validate() const {
  MOG_CHECK(devices >= 1, "a fleet needs at least one device");
  MOG_CHECK(vnodes_per_device >= 1, "ring needs at least one vnode");
  MOG_CHECK(device_loss_strikes >= 1,
            "device loss needs at least one strike");
  MOG_CHECK(obs_port <= 65535, "obs_port out of range");
  serve.validate();
}

std::string MigrationStats::summary() const {
  return strprintf(
      "migrations: %llu attempted, %llu completed, %llu checkpoint-rejected "
      "(%llu retried, %llu reset), %llu capacity-exhausted, "
      "%llu frames requeued (%llu dropped in transit)",
      static_cast<unsigned long long>(attempted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(checkpoint_rejected),
      static_cast<unsigned long long>(snapshot_retries),
      static_cast<unsigned long long>(models_reset),
      static_cast<unsigned long long>(capacity_exhausted),
      static_cast<unsigned long long>(frames_requeued),
      static_cast<unsigned long long>(frames_dropped_in_transit));
}

template <typename T>
DeviceFleet<T>::DeviceFleet(const FleetConfig& config)
    : config_(config), scheduler_(config.vnodes_per_device) {
  config_.validate();
  serve::ServeConfig member = config_.serve;
  member.obs_port = -1;  // the fleet owns the observability endpoint
  nodes_.reserve(static_cast<std::size_t>(config_.devices));
  for (int d = 0; d < config_.devices; ++d) {
    member.profile_label = strprintf("dev%d", d);
    DeviceNode node;
    node.server = std::make_unique<serve::StreamServer<T>>(member);
    nodes_.push_back(std::move(node));
    scheduler_.add_device(d);
  }
  start_obs_server();
}

template <typename T>
DeviceFleet<T>::~DeviceFleet() {
  obs_http_.stop();  // no scrape may touch a half-destroyed fleet
  stop();
}

template <typename T>
void DeviceFleet<T>::start_obs_server() {
  if (config_.obs_port < 0) return;
  obs_http_.handle("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.content_type = obs::kPrometheusContentType;
    r.body = metrics_text();
    return r;
  });
  obs_http_.handle("/healthz", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    std::string detail;
    const bool ok = healthz(detail);
    r.status = ok ? 200 : 503;
    r.body = (ok ? "ok\n" : "unhealthy\n") + detail;
    return r;
  });
  obs_http_.handle("/statusz", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = statusz();
    return r;
  });
  // The sampler is process-global, so one capture covers every device
  // plane's pump and executor threads ("dev<i>.pump", "exec<w>") at once.
  obs_http_.handle("/profilez", obs::profilez_response);
  obs_http_.start(config_.obs_port);
  log_.info("fleet observability endpoint up",
            {{"port", obs_http_.port()},
             {"endpoints", "/metrics /healthz /statusz /profilez"}});
}

template <typename T>
void DeviceFleet<T>::set_device_injector(
    int d, std::shared_ptr<fault::FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(d >= 0 && d < static_cast<int>(nodes_.size()),
            "unknown device id");
  nodes_[static_cast<std::size_t>(d)].injector = std::move(injector);
}

template <typename T>
std::vector<DeviceLoad> DeviceFleet<T>::loads_locked(
    int exclude_device) const {
  std::vector<DeviceLoad> loads;
  loads.reserve(nodes_.size());
  for (std::size_t d = 0; d < nodes_.size(); ++d) {
    const DeviceNode& node = nodes_[d];
    DeviceLoad l;
    l.device = static_cast<int>(d);
    l.alive = node.alive && l.device != exclude_device;
    l.open_streams = node.server->open_streams();
    l.bytes_in_use = node.server->device_bytes_in_use();
    loads.push_back(l);
  }
  return loads;
}

template <typename T>
int DeviceFleet<T>::open_on_some_device_locked(StreamRec& rec,
                                               int exclude_device) {
  std::vector<DeviceLoad> loads = loads_locked(exclude_device);
  while (true) {
    const int d = scheduler_.pick(rec.key, loads);
    if (d < 0) return -1;
    DeviceNode& node = nodes_[static_cast<std::size_t>(d)];
    // A stream-scoped injector (sick camera) travels with the stream;
    // otherwise the stream joins the hosting device's fault domain.
    std::shared_ptr<fault::FaultInjector> inj =
        rec.own_injector != nullptr ? rec.own_injector : node.injector;
    try {
      rec.local_id = node.server->open_stream(rec.gpu, std::move(inj));
      rec.device = d;
      return d;
    } catch (const serve::AdmissionError&) {
      // This device is full; strike it from the candidate set and retry.
      for (DeviceLoad& l : loads)
        if (l.device == d) l.alive = false;
    }
  }
}

template <typename T>
int DeviceFleet<T>::open_stream(const GpuConfig& gpu_config,
                                std::shared_ptr<fault::FaultInjector> injector,
                                std::string placement_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(recs_.size());
  StreamRec rec;
  rec.gpu = gpu_config;
  rec.own_injector = std::move(injector);
  rec.key = placement_key.empty() ? strprintf("stream-%d", id)
                                  : std::move(placement_key);
  rec.last_tier = gpu_config.tiled ? fault::ExecutionTier::kTiledGpu
                                   : fault::ExecutionTier::kGpuDirect;
  const int d = open_on_some_device_locked(rec, /*exclude_device=*/-1);
  if (d < 0) {
    int alive = 0;
    for (const DeviceNode& node : nodes_) alive += node.alive ? 1 : 0;
    throw serve::AdmissionError{strprintf(
        "stream refused: every alive device is at capacity (%d devices, "
        "%d alive)",
        static_cast<int>(nodes_.size()), alive)};
  }
  recs_.push_back(std::move(rec));
  log_.info("stream placed",
            {{"stream", id}, {"device", d}, {"key", recs_.back().key}});
  return id;
}

template <typename T>
void DeviceFleet<T>::close_stream(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamRec& rec = rec_at(id);
  MOG_CHECK(rec.open, "stream already closed");
  nodes_[static_cast<std::size_t>(rec.device)].server->close_stream(
      rec.local_id);
  rec.open = false;
}

template <typename T>
bool DeviceFleet<T>::submit(int id, FrameU8 frame, double arrival_seconds,
                            std::uint64_t ticket) {
  // Hold the fleet lock through the member call so the stream cannot be
  // mid-migration between the routing decision and the enqueue.
  std::lock_guard<std::mutex> lock(mu_);
  StreamRec& rec = rec_at(id);
  MOG_CHECK(rec.open, "submit to a closed stream");
  return nodes_[static_cast<std::size_t>(rec.device)].server->submit(
      rec.local_id, std::move(frame), arrival_seconds, ticket);
}

template <typename T>
int DeviceFleet<T>::pump() {
  std::lock_guard<std::mutex> lock(mu_);
  return pump_locked();
}

template <typename T>
int DeviceFleet<T>::pump_locked() {
  int n = 0;
  for (DeviceNode& node : nodes_) n += node.server->pump();
  supervise_locked();
  return n;
}

template <typename T>
void DeviceFleet<T>::drain() {
  // Two consecutive idle rounds: a migration inside supervise can requeue
  // frames after the round's ingest phase already ran, so one idle round is
  // not proof the fleet is dry.
  int idle = 0;
  while (idle < 2) idle = pump() > 0 ? 0 : idle + 1;
}

template <typename T>
void DeviceFleet<T>::start() {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(!running_, "fleet supervisor already running");
  log_.info("fleet starting",
            {{"devices", static_cast<int>(nodes_.size())}});
  stop_requested_.store(false);
  for (DeviceNode& node : nodes_) node.server->start();
  running_ = true;
  supervisor_ = std::thread([this] {
    while (!stop_requested_.load()) {
      {
        std::lock_guard<std::mutex> supervise_lock(mu_);
        supervise_locked();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
}

template <typename T>
void DeviceFleet<T>::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_.store(true);
  }
  supervisor_.join();
  for (DeviceNode& node : nodes_) node.server->stop();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

template <typename T>
void DeviceFleet<T>::fail_device(int d) {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(d >= 0 && d < static_cast<int>(nodes_.size()),
            "unknown device id");
  declare_lost_locked(d, "fail_device");
}

template <typename T>
void DeviceFleet<T>::supervise_locked() {
  // Charge degradation strikes: a stream stepping down the recovery ladder
  // is evidence against the device hosting it (launch/transfer failures are
  // device-side in this model; frame-level corruption never degrades).
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    StreamRec& rec = recs_[i];
    if (!rec.open) continue;
    DeviceNode& node = nodes_[static_cast<std::size_t>(rec.device)];
    const fault::ExecutionTier tier =
        node.server->stream_stats(rec.local_id).tier;
    if (static_cast<int>(tier) > static_cast<int>(rec.last_tier) &&
        node.alive) {
      ++node.strikes;
      log_.warn("degradation strike",
                {{"stream", static_cast<int>(i)},
                 {"device", rec.device},
                 {"tier", fault::to_string(tier)},
                 {"strikes", node.strikes}});
    }
    rec.last_tier = tier;
  }
  for (std::size_t d = 0; d < nodes_.size(); ++d)
    if (nodes_[d].alive && nodes_[d].strikes >= config_.device_loss_strikes)
      declare_lost_locked(static_cast<int>(d), "degradation strikes");
}

template <typename T>
void DeviceFleet<T>::declare_lost_locked(int d, const char* reason) {
  DeviceNode& node = nodes_[static_cast<std::size_t>(d)];
  if (!node.alive) return;
  node.alive = false;
  log_.error("device lost",
             {{"device", d}, {"reason", reason}, {"strikes", node.strikes}});
  if (!config_.auto_migrate) return;
  for (std::size_t i = 0; i < recs_.size(); ++i)
    if (recs_[i].open && recs_[i].device == d)
      migrate_stream_locked(static_cast<int>(i));
}

template <typename T>
bool DeviceFleet<T>::migrate_stream_locked(int id) {
  ++migration_stats_.attempted;
  StreamRec& rec = recs_[static_cast<std::size_t>(id)];
  const int src_d = rec.device;
  const int local = rec.local_id;
  serve::StreamServer<T>& src = *nodes_[static_cast<std::size_t>(src_d)].server;

  // 1. Reserve a slot on a healthy device first: when nobody can take the
  //    stream it stays untouched and rides its per-stream ladder in place.
  const int dst_d = open_on_some_device_locked(rec, src_d);
  if (dst_d < 0) {
    ++migration_stats_.capacity_exhausted;
    log_.warn("migration refused: no device has capacity",
              {{"stream", id}, {"device", src_d}});
    return false;
  }
  serve::StreamServer<T>& dst = *nodes_[static_cast<std::size_t>(dst_d)].server;
  const int nl = rec.local_id;

  // 2. Freeze the victim: steal its queued frames (arrival stamps and trace
  //    tickets preserved), flush the partial tiled group.
  std::vector<serve::QueuedFrame> stolen = src.steal_queue(local);
  const fault::ExecutionTier victim_tier = src.stream_stats(local).tier;
  src.flush_stream(local);

  // 3. Snapshot the model through the MOGM v2 CRC checkpoint encoding. A
  //    corrupt payload is rejected by type; retry once from a fresh device
  //    read before falling back to a fresh model.
  std::unique_ptr<MogModel<T>> model;
  const auto decode = [&](const std::vector<std::uint8_t>& payload) {
    try {
      model = std::make_unique<MogModel<T>>(deserialize_model<T>(
          payload.data(), payload.size(), rec.gpu.params,
          "migration snapshot"));
      return true;
    } catch (const ModelIoError& e) {
      ++migration_stats_.checkpoint_rejected;
      log_.error("migration snapshot rejected",
                 {{"stream", id}, {"error", e.what()}});
      return false;
    }
  };
  std::vector<std::uint8_t> payload = serialize_model(src.stream_model(local));
  if (snapshot_corruptor_) snapshot_corruptor_(payload);
  if (!decode(payload)) {
    ++migration_stats_.snapshot_retries;
    payload = serialize_model(src.stream_model(local));
    if (snapshot_corruptor_) snapshot_corruptor_(payload);
    decode(payload);
  }
  if (model != nullptr) {
    dst.restore_stream_model(nl, *model);
  } else {
    ++migration_stats_.models_reset;
    log_.error("snapshot unrecoverable; stream resumes with a fresh model",
               {{"stream", id}});
  }

  // 4. Carry the victim incarnation's history, then retire it.
  rec.masks_stash += src.stream_stats(local).masks_delivered;
  {
    std::vector<FrameU8> masks = src.take_masks(local);
    rec.mask_stash.insert(rec.mask_stash.end(),
                          std::make_move_iterator(masks.begin()),
                          std::make_move_iterator(masks.end()));
  }
  {
    const std::vector<double> lat = src.latency_samples(local);
    rec.latency_stash.insert(rec.latency_stash.end(), lat.begin(), lat.end());
  }
  src.close_stream(local);

  // 5. Requeue the stolen frames on the target, oldest first.
  for (serve::QueuedFrame& qf : stolen) {
    ++migration_stats_.frames_requeued;
    if (!dst.resubmit(nl, std::move(qf)))
      ++migration_stats_.frames_dropped_in_transit;
  }

  // The target opened with the stream's original GPU config, so a degraded
  // victim returns to its full tier.
  rec.last_tier = rec.gpu.tiled ? fault::ExecutionTier::kTiledGpu
                                : fault::ExecutionTier::kGpuDirect;
  ++rec.migrations;
  ++nodes_[static_cast<std::size_t>(src_d)].migrations_out;
  ++nodes_[static_cast<std::size_t>(dst_d)].migrations_in;
  ++migration_stats_.completed;
  log_.info("stream migrated",
            {{"stream", id},
             {"from", src_d},
             {"to", dst_d},
             {"frames_requeued", static_cast<std::int64_t>(stolen.size())},
             {"victim_tier", fault::to_string(victim_tier)},
             {"model", model != nullptr ? "restored" : "reset"}});
  return true;
}

template <typename T>
int DeviceFleet<T>::devices() const {
  return static_cast<int>(nodes_.size());
}

template <typename T>
int DeviceFleet<T>::alive_devices() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const DeviceNode& node : nodes_) n += node.alive ? 1 : 0;
  return n;
}

template <typename T>
bool DeviceFleet<T>::device_alive(int d) const {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(d >= 0 && d < static_cast<int>(nodes_.size()),
            "unknown device id");
  return nodes_[static_cast<std::size_t>(d)].alive;
}

template <typename T>
int DeviceFleet<T>::stream_device(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rec_at(id).device;
}

template <typename T>
std::vector<FrameU8> DeviceFleet<T>::take_masks(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamRec& rec = rec_at(id);
  std::vector<FrameU8> out = std::move(rec.mask_stash);
  rec.mask_stash.clear();
  std::vector<FrameU8> cur =
      nodes_[static_cast<std::size_t>(rec.device)].server->take_masks(
          rec.local_id);
  out.insert(out.end(), std::make_move_iterator(cur.begin()),
             std::make_move_iterator(cur.end()));
  return out;
}

template <typename T>
FleetStreamInfo DeviceFleet<T>::stream_info(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const StreamRec& rec = rec_at(id);
  FleetStreamInfo info;
  info.device = rec.device;
  info.open = rec.open;
  info.migrations = rec.migrations;
  info.serve = nodes_[static_cast<std::size_t>(rec.device)]
                   .server->stream_stats(rec.local_id);
  info.tier = info.serve.tier;
  info.masks_delivered = rec.masks_stash + info.serve.masks_delivered;
  return info;
}

template <typename T>
const MigrationStats& DeviceFleet<T>::migration_stats() const {
  return migration_stats_;
}

template <typename T>
telemetry::Rollup DeviceFleet<T>::latency_rollup(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const StreamRec& rec = rec_at(id);
  std::vector<double> all = rec.latency_stash;
  const std::vector<double> cur =
      nodes_[static_cast<std::size_t>(rec.device)].server->latency_samples(
          rec.local_id);
  all.insert(all.end(), cur.begin(), cur.end());
  return telemetry::make_rollup(all);
}

template <typename T>
telemetry::Rollup DeviceFleet<T>::aggregate_latency_rollup() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Member servers retain closed victims' samples, so no stash here (it
  // would double count migrated streams).
  std::vector<double> all;
  for (const DeviceNode& node : nodes_) {
    const std::vector<double> lat = node.server->aggregate_latencies();
    all.insert(all.end(), lat.begin(), lat.end());
  }
  return telemetry::make_rollup(all);
}

template <typename T>
std::uint64_t DeviceFleet<T>::masks_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const DeviceNode& node : nodes_) total += node.server->masks_delivered();
  return total;
}

template <typename T>
std::uint64_t DeviceFleet<T>::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const DeviceNode& node : nodes_) total += node.server->frames_dropped();
  return total;
}

template <typename T>
double DeviceFleet<T>::makespan_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double span = 0;
  for (const DeviceNode& node : nodes_)
    span = std::max(span, node.server->makespan_seconds());
  return span;
}

template <typename T>
serve::StreamServer<T>& DeviceFleet<T>::device_server(int d) {
  MOG_CHECK(d >= 0 && d < static_cast<int>(nodes_.size()),
            "unknown device id");
  return *nodes_[static_cast<std::size_t>(d)].server;
}

template <typename T>
const serve::StreamServer<T>& DeviceFleet<T>::device_server(int d) const {
  MOG_CHECK(d >= 0 && d < static_cast<int>(nodes_.size()),
            "unknown device id");
  return *nodes_[static_cast<std::size_t>(d)].server;
}

template <typename T>
void DeviceFleet<T>::set_snapshot_corruptor(
    std::function<void(std::vector<std::uint8_t>&)> corruptor) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_corruptor_ = std::move(corruptor);
}

template <typename T>
typename DeviceFleet<T>::StreamRec& DeviceFleet<T>::rec_at(int id) {
  MOG_CHECK(id >= 0 && id < static_cast<int>(recs_.size()),
            "unknown stream id");
  return recs_[static_cast<std::size_t>(id)];
}

template <typename T>
const typename DeviceFleet<T>::StreamRec& DeviceFleet<T>::rec_at(
    int id) const {
  MOG_CHECK(id >= 0 && id < static_cast<int>(recs_.size()),
            "unknown stream id");
  return recs_[static_cast<std::size_t>(id)];
}

template <typename T>
std::string DeviceFleet<T>::metrics_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_text_locked();
}

template <typename T>
std::string DeviceFleet<T>::metrics_text_locked() const {
  using obs::MetricFamily;
  using obs::MetricType;
  std::vector<MetricFamily> families;

  const auto device_label = [](std::size_t d) {
    return obs::LabelSet{{"device", strprintf("%zu", d)}};
  };

  {
    MetricFamily f;
    f.name = "mog_fleet_devices";
    f.help = "Device nodes by liveness state";
    int alive = 0;
    for (const DeviceNode& node : nodes_) alive += node.alive ? 1 : 0;
    f.samples.push_back(
        {{{"state", "alive"}}, static_cast<double>(alive)});
    f.samples.push_back(
        {{{"state", "lost"}},
         static_cast<double>(static_cast<int>(nodes_.size()) - alive)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_device_up";
    f.help = "1 while the device node is alive, 0 once declared lost";
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back({device_label(d), nodes_[d].alive ? 1.0 : 0.0});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_open_streams";
    f.help = "Streams currently admitted per device";
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d),
           static_cast<double>(nodes_[d].server->open_streams())});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_device_memory_bytes";
    f.help = "Device memory held by admitted streams per device";
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d),
           static_cast<double>(nodes_[d].server->device_bytes_in_use())});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_device_strikes";
    f.help = "Degradation strikes charged against each device";
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d), static_cast<double>(nodes_[d].strikes)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_masks_delivered_total";
    f.help = "Masks completed end to end per device";
    f.type = MetricType::kCounter;
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d),
           static_cast<double>(nodes_[d].server->masks_delivered())});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_frames_dropped_total";
    f.help = "Frames lost to queue drop policies per device";
    f.type = MetricType::kCounter;
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d),
           static_cast<double>(nodes_[d].server->frames_dropped())});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_engine_busy_seconds";
    f.help = "Cumulative busy time of each device's shared engines";
    for (std::size_t d = 0; d < nodes_.size(); ++d) {
      const gpusim::SharedTimeline& tl = nodes_[d].server->timeline();
      obs::LabelSet dma = device_label(d);
      dma.emplace_back("engine", "dma");
      f.samples.push_back({std::move(dma), tl.dma_busy_seconds()});
      obs::LabelSet kernel = device_label(d);
      kernel.emplace_back("engine", "kernel");
      f.samples.push_back({std::move(kernel), tl.kernel_busy_seconds()});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_device_makespan_seconds";
    f.help = "Modeled completion time per device";
    for (std::size_t d = 0; d < nodes_.size(); ++d)
      f.samples.push_back(
          {device_label(d), nodes_[d].server->makespan_seconds()});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_migrations_total";
    f.help = "Live-migration protocol actions";
    f.type = MetricType::kCounter;
    const std::pair<const char*, std::uint64_t> events[] = {
        {"attempted", migration_stats_.attempted},
        {"completed", migration_stats_.completed},
        {"checkpoint_rejected", migration_stats_.checkpoint_rejected},
        {"snapshot_retry", migration_stats_.snapshot_retries},
        {"model_reset", migration_stats_.models_reset},
        {"capacity_exhausted", migration_stats_.capacity_exhausted},
        {"frame_requeued", migration_stats_.frames_requeued},
        {"frame_dropped_in_transit",
         migration_stats_.frames_dropped_in_transit},
    };
    for (const auto& [event, count] : events)
      f.samples.push_back(
          {{{"event", event}}, static_cast<double>(count)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_stream_device";
    f.help = "Current device hosting each fleet stream";
    for (std::size_t i = 0; i < recs_.size(); ++i)
      f.samples.push_back({{{"stream", strprintf("%zu", i)}},
                           static_cast<double>(recs_[i].device)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_stream_migrations_total";
    f.help = "Completed failovers per fleet stream";
    f.type = MetricType::kCounter;
    for (std::size_t i = 0; i < recs_.size(); ++i)
      f.samples.push_back({{{"stream", strprintf("%zu", i)}},
                           static_cast<double>(recs_[i].migrations)});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f;
    f.name = "mog_fleet_latency_seconds";
    f.help = "End-to-end modeled latency across every device";
    f.type = MetricType::kHistogram;
    std::vector<double> all;
    for (const DeviceNode& node : nodes_) {
      const std::vector<double> lat = node.server->aggregate_latencies();
      all.insert(all.end(), lat.begin(), lat.end());
    }
    f.histograms.push_back(obs::make_histogram(all, {}));
    families.push_back(std::move(f));
  }

  // Global telemetry sinks, when installed (same dedup rule as the member
  // servers: labelled fleet families win over registry rollups).
  std::vector<MetricFamily> global;
  if (const telemetry::CounterRegistry* reg = telemetry::counters())
    obs::append_counter_registry(*reg, global);
  if (const telemetry::TraceRecorder* tr = telemetry::tracer())
    obs::append_trace_health(*tr, global);
  for (MetricFamily& f : global) {
    bool duplicate = false;
    for (const MetricFamily& own : families) duplicate |= own.name == f.name;
    if (!duplicate) families.push_back(std::move(f));
  }

  return obs::render(families);
}

template <typename T>
bool DeviceFleet<T>::healthz(std::string& detail) const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthz_locked(detail);
}

template <typename T>
bool DeviceFleet<T>::healthz_locked(std::string& detail) const {
  int alive = 0;
  for (const DeviceNode& node : nodes_) alive += node.alive ? 1 : 0;
  bool ok = alive > 0;
  for (std::size_t d = 0; d < nodes_.size(); ++d) {
    const DeviceNode& node = nodes_[d];
    detail += strprintf("device %zu: %s, %d stream(s), %d strike(s)\n", d,
                        node.alive ? "alive" : "LOST",
                        node.server->open_streams(), node.strikes);
    std::string sub;
    const bool node_ok = node.server->healthz(sub);
    // A stream stranded on a lost device (capacity exhausted fleet-wide)
    // keeps the fleet unhealthy until it is back on a GPU tier somewhere.
    ok = ok && node_ok;
    std::size_t pos = 0;
    while (pos < sub.size()) {
      const std::size_t nl = sub.find('\n', pos);
      detail += "  " + sub.substr(pos, nl - pos) + "\n";
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
  }
  return ok;
}

template <typename T>
std::string DeviceFleet<T>::statusz() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statusz_locked();
}

template <typename T>
std::string DeviceFleet<T>::statusz_locked() const {
  int alive = 0;
  for (const DeviceNode& node : nodes_) alive += node.alive ? 1 : 0;
  std::string out = "== fleet ==\n";
  out += strprintf("devices: %zu (%d alive), streams: %zu\n", nodes_.size(),
                   alive, recs_.size());
  out += migration_stats_.summary() + "\n";
  for (std::size_t d = 0; d < nodes_.size(); ++d) {
    const DeviceNode& node = nodes_[d];
    out += strprintf(
        "-- device %zu [%s, %d strike(s), %llu in / %llu out migrations]\n",
        d, node.alive ? "alive" : "LOST", node.strikes,
        static_cast<unsigned long long>(node.migrations_in),
        static_cast<unsigned long long>(node.migrations_out));
    out += node.server->statusz();
  }
  return out;
}

template <typename T>
std::string DeviceFleet<T>::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (const DeviceNode& node : nodes_) alive += node.alive ? 1 : 0;
  std::string out = strprintf(
      "fleet: %zu device(s), %d alive, %zu stream(s), %s", nodes_.size(),
      alive, recs_.size(), migration_stats_.summary().c_str());
  for (std::size_t d = 0; d < nodes_.size(); ++d)
    out += strprintf("\ndevice %zu [%s]: %s", d,
                     nodes_[d].alive ? "alive" : "LOST",
                     nodes_[d].server->summary().c_str());
  return out;
}

template class DeviceFleet<float>;
template class DeviceFleet<double>;

}  // namespace mog::cluster
