#include "mog/cluster/placement.hpp"

#include <algorithm>

#include "mog/common/rng.hpp"

namespace mog::cluster {

ClusterScheduler::ClusterScheduler(int vnodes_per_device)
    : vnodes_per_device_(vnodes_per_device) {
  MOG_CHECK(vnodes_per_device >= 1, "ring needs at least one vnode");
}

void ClusterScheduler::add_device(int device) {
  MOG_CHECK(device >= 0, "device id must be >= 0");
  // Seed the device's vnode sequence from its id; SplitMix64 scatters the
  // consecutive ids across the whole hash space.
  SplitMix64 mix{0x9e3779b97f4a7c15ull ^
                 (static_cast<std::uint64_t>(device) + 1)};
  for (int v = 0; v < vnodes_per_device_; ++v)
    ring_.push_back(VNode{mix.next(), device});
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.device < b.device;
            });
  ++devices_;
}

std::uint64_t ClusterScheduler::hash_key(std::string_view key) {
  // FNV-1a folded through SplitMix64's finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64{h}.next();
}

int ClusterScheduler::pick(std::string_view key,
                           const std::vector<DeviceLoad>& loads) const {
  // 1. Lightest alive load wins outright.
  const DeviceLoad* best = nullptr;
  for (const DeviceLoad& l : loads) {
    if (!l.alive) continue;
    if (best == nullptr || l.open_streams < best->open_streams ||
        (l.open_streams == best->open_streams &&
         l.bytes_in_use < best->bytes_in_use))
      best = &l;
  }
  if (best == nullptr) return -1;

  std::vector<int> tied;
  for (const DeviceLoad& l : loads)
    if (l.alive && l.open_streams == best->open_streams &&
        l.bytes_in_use == best->bytes_in_use)
      tied.push_back(l.device);
  if (tied.size() == 1) return tied.front();

  // 2. Tiebreak: first tied device met walking the ring from hash(key).
  const std::uint64_t h = hash_key(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VNode& v, std::uint64_t hash) { return v.hash < hash; });
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(tied.begin(), tied.end(), it->device) != tied.end())
      return it->device;
    ++it;
  }
  return tied.front();  // ring empty (no add_device yet): deterministic pick
}

}  // namespace mog::cluster
