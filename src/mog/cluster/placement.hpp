// Stream -> device placement for the multi-device fleet.
//
// Policy: least-loaded first, consistent-hash tiebreak. The primary signal
// is the live load vector (open streams, then device-memory bytes) so a new
// stream always lands on the emptiest device; when several devices tie — the
// common case on an idle fleet — the winner is chosen by walking a
// consistent-hash ring from the stream key's hash, so placement is
// deterministic, uniformly spread, and stable: adding or losing a device
// only remaps the streams that hashed near it, not the whole fleet.
//
// The ring holds `vnodes` virtual nodes per device (SplitMix64-expanded from
// the device id), the standard trick to smooth out hash-space imbalance.
// Lost devices stay on the ring but are never eligible, so a device coming
// back (future work) would reclaim exactly its old arc.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mog/common/error.hpp"

namespace mog::cluster {

/// Live load snapshot of one device, as seen by the scheduler.
struct DeviceLoad {
  int device = -1;
  bool alive = true;
  int open_streams = 0;
  std::size_t bytes_in_use = 0;
};

class ClusterScheduler {
 public:
  explicit ClusterScheduler(int vnodes_per_device = 64);

  /// Register a device with `vnodes_per_device` virtual nodes on the ring.
  void add_device(int device);

  /// Stable 64-bit hash of a stream placement key.
  static std::uint64_t hash_key(std::string_view key);

  /// Pick the placement target: the alive device with the lightest load
  /// (fewest open streams, then fewest bytes); ties resolved by the first
  /// tied device met walking the ring clockwise from hash(key). Returns -1
  /// when no alive device exists.
  int pick(std::string_view key, const std::vector<DeviceLoad>& loads) const;

  int devices_on_ring() const { return devices_; }

 private:
  struct VNode {
    std::uint64_t hash;
    int device;
  };

  int vnodes_per_device_;
  int devices_ = 0;
  std::vector<VNode> ring_;  ///< sorted by hash
};

}  // namespace mog::cluster
