// Foreground validation: the cleanup pipeline of the paper's reference
// implementation (Cheung & Kamath 2005 apply "foreground validation" after
// raw MoG decisions). Composes despeckling, morphology, and blob-level
// filtering into one configurable pass.
#pragma once

#include "mog/postproc/components.hpp"
#include "mog/postproc/morphology.hpp"

namespace mog {

struct ValidationConfig {
  bool despeckle = true;     ///< 3x3 binary median first
  int close_radius = 1;      ///< fill small holes (0 = skip)
  int open_radius = 0;       ///< remove thin bridges (0 = skip)
  int min_blob_area = 24;    ///< drop blobs below this (0 = keep all)
  double min_fill_ratio = 0; ///< drop wireframe-like blobs (0 = keep all)

  void validate() const;

  /// True when at least one stage would run; validate_foreground is the
  /// identity (and skips all work) when this is false.
  bool active() const {
    return despeckle || close_radius > 0 || open_radius > 0 ||
           min_blob_area > 0 || min_fill_ratio > 0.0;
  }

  /// True when the configuration is expressible as the fused device epilogue
  /// (optimization step G): despeckle plus a radius-≤1 close. Opening and
  /// the blob-level filters need global connectivity and cannot fuse; a
  /// close radius beyond 1 exceeds the epilogue's shared-memory halo. Level
  /// G falls back to host postproc (with a recorded counter) when false.
  bool fusable() const {
    return close_radius <= 1 && open_radius == 0 && min_blob_area == 0 &&
           min_fill_ratio == 0.0;
  }

  /// validate() plus the fusability constraints — the fused-epilogue kernel
  /// rejects configurations it cannot honor bit-exactly instead of silently
  /// diverging from validate_foreground.
  void validate_fused() const;
};

/// The device-postproc default: exactly the stages the fused epilogue
/// supports (despeckle + radius-1 close, no blob filtering).
inline ValidationConfig fused_validation_config() {
  ValidationConfig c;
  c.despeckle = true;
  c.close_radius = 1;
  c.open_radius = 0;
  c.min_blob_area = 0;
  c.min_fill_ratio = 0.0;
  return c;
}

/// Apply the validation pipeline to a raw foreground mask.
FrameU8 validate_foreground(const FrameU8& raw_mask,
                            const ValidationConfig& config = {});

/// Mask post-processing as a GPU-pipeline stage. At optimization level G
/// the fused device epilogue cleans the mask before it crosses the
/// simulated DRAM/transfer boundary (one extra launch per frame); at lower
/// levels the same stages can run as the unfused device chain (one launch
/// per stage) or on the host after the download. Configurations the device
/// kernels cannot express (see ValidationConfig::fusable) fall back to host
/// post-processing — recorded by the pipeline, never silent.
struct MaskPostprocConfig {
  bool enabled = false;   ///< run validation stages as part of the pipeline
  bool on_device = true;  ///< device kernels when fusable, else host fallback
  ValidationConfig validation = fused_validation_config();
};

}  // namespace mog
