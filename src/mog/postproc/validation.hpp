// Foreground validation: the cleanup pipeline of the paper's reference
// implementation (Cheung & Kamath 2005 apply "foreground validation" after
// raw MoG decisions). Composes despeckling, morphology, and blob-level
// filtering into one configurable pass.
#pragma once

#include "mog/postproc/components.hpp"
#include "mog/postproc/morphology.hpp"

namespace mog {

struct ValidationConfig {
  bool despeckle = true;     ///< 3x3 binary median first
  int close_radius = 1;      ///< fill small holes (0 = skip)
  int open_radius = 0;       ///< remove thin bridges (0 = skip)
  int min_blob_area = 24;    ///< drop blobs below this (0 = keep all)
  double min_fill_ratio = 0; ///< drop wireframe-like blobs (0 = keep all)

  void validate() const;
};

/// Apply the validation pipeline to a raw foreground mask.
FrameU8 validate_foreground(const FrameU8& raw_mask,
                            const ValidationConfig& config = {});

}  // namespace mog
