#include "mog/postproc/validation.hpp"

namespace mog {

void ValidationConfig::validate() const {
  MOG_CHECK(close_radius >= 0 && close_radius <= 15,
            "close_radius out of range");
  MOG_CHECK(open_radius >= 0 && open_radius <= 15,
            "open_radius out of range");
  MOG_CHECK(min_blob_area >= 0, "min_blob_area must be non-negative");
  MOG_CHECK(min_fill_ratio >= 0.0 && min_fill_ratio <= 1.0,
            "min_fill_ratio must be in [0, 1]");
}

FrameU8 validate_foreground(const FrameU8& raw_mask,
                            const ValidationConfig& config) {
  config.validate();
  FrameU8 mask = raw_mask;
  if (config.despeckle) mask = median3(mask);
  if (config.close_radius > 0) mask = morph_close(mask, config.close_radius);
  if (config.open_radius > 0) mask = morph_open(mask, config.open_radius);

  if (config.min_blob_area > 0 || config.min_fill_ratio > 0.0) {
    const LabeledComponents components = label_components(mask);
    std::vector<bool> keep(components.blobs.size(), true);
    for (const Blob& b : components.blobs) {
      if (b.area < config.min_blob_area ||
          b.fill_ratio() < config.min_fill_ratio)
        keep[static_cast<std::size_t>(b.id)] = false;
    }
    for (std::size_t i = 0; i < mask.size(); ++i) {
      const std::int32_t id = components.labels[i];
      mask[i] =
          (id >= 0 && keep[static_cast<std::size_t>(id)]) ? 255 : 0;
    }
  }
  return mask;
}

}  // namespace mog
