#include "mog/postproc/validation.hpp"

namespace mog {

void ValidationConfig::validate() const {
  MOG_CHECK(close_radius >= 0 && close_radius <= 15,
            "close_radius out of range");
  MOG_CHECK(open_radius >= 0 && open_radius <= 15,
            "open_radius out of range");
  MOG_CHECK(min_blob_area >= 0, "min_blob_area must be non-negative");
  MOG_CHECK(min_fill_ratio >= 0.0 && min_fill_ratio <= 1.0,
            "min_fill_ratio must be in [0, 1]");
}

void ValidationConfig::validate_fused() const {
  validate();
  MOG_CHECK(close_radius <= 1,
            "fused postproc epilogue supports close_radius <= 1 only");
  MOG_CHECK(open_radius == 0,
            "fused postproc epilogue does not support opening");
  MOG_CHECK(min_blob_area == 0 && min_fill_ratio == 0.0,
            "fused postproc epilogue does not support blob filtering");
}

FrameU8 validate_foreground(const FrameU8& raw_mask,
                            const ValidationConfig& config) {
  config.validate();
  if (!config.active()) return raw_mask;  // identity: no stage, no work
  // Each enabled stage reads its predecessor's output and replaces the
  // working copy; the first one reads raw_mask directly, so the pipeline
  // never materializes a copy that a stage's own output would discard.
  FrameU8 mask;
  const FrameU8* cur = &raw_mask;
  if (config.despeckle) {
    mask = median3(*cur);
    cur = &mask;
  }
  if (config.close_radius > 0) {
    mask = morph_close(*cur, config.close_radius);
    cur = &mask;
  }
  if (config.open_radius > 0) {
    mask = morph_open(*cur, config.open_radius);
    cur = &mask;
  }
  if (cur != &mask) mask = *cur;  // only blob stages enabled

  if (config.min_blob_area > 0 || config.min_fill_ratio > 0.0) {
    const LabeledComponents components = label_components(mask);
    std::vector<bool> keep(components.blobs.size(), true);
    for (const Blob& b : components.blobs) {
      if (b.area < config.min_blob_area ||
          b.fill_ratio() < config.min_fill_ratio)
        keep[static_cast<std::size_t>(b.id)] = false;
    }
    for (std::size_t i = 0; i < mask.size(); ++i) {
      const std::int32_t id = components.labels[i];
      mask[i] =
          (id >= 0 && keep[static_cast<std::size_t>(id)]) ? 255 : 0;
    }
  }
  return mask;
}

}  // namespace mog
