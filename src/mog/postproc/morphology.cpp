#include "mog/postproc/morphology.hpp"

#include <cstdint>
#include <vector>

namespace mog {

namespace {

/// Separable min/max filter: two passes (horizontal, vertical) of a sliding
/// window — the square structuring element decomposes into two 1-D runs.
/// kMax = dilation (foreground if ANY window pixel is foreground;
/// out-of-frame pixels are skipped, i.e. pad with the identity element
/// background); otherwise erosion (foreground only if EVERY in-frame window
/// pixel is foreground — out-of-frame pixels are skipped, i.e. pad with the
/// identity element FOREGROUND, so closing stays extensive at the border).
template <bool kMax>
FrameU8 minmax_filter(const FrameU8& mask, int radius) {
  MOG_CHECK(radius >= 1 && radius <= 15, "radius must be in [1, 15]");
  const int w = mask.width(), h = mask.height();
  FrameU8 tmp(w, h), out(w, h);

  auto window = [radius](auto&& fg_at, int center, int limit) {
    if constexpr (kMax) {
      for (int i = -radius; i <= radius; ++i) {
        const int p = center + i;
        if (p >= 0 && p < limit && fg_at(p)) return std::uint8_t{255};
      }
      return std::uint8_t{0};
    } else {
      // Erosion pads with its identity element (foreground), so closing
      // remains extensive (mask ⊆ close(mask)) at the frame border.
      for (int i = -radius; i <= radius; ++i) {
        const int p = center + i;
        if (p >= 0 && p < limit && !fg_at(p)) return std::uint8_t{0};
      }
      return std::uint8_t{255};
    }
  };

  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      tmp.at(x, y) = window(
          [&](int p) { return mask.at(p, y) != 0; }, x, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      out.at(x, y) = window(
          [&](int p) { return tmp.at(x, p) != 0; }, y, h);
  return out;
}

}  // namespace

FrameU8 erode(const FrameU8& mask, int radius) {
  return minmax_filter<false>(mask, radius);
}

FrameU8 dilate(const FrameU8& mask, int radius) {
  return minmax_filter<true>(mask, radius);
}

FrameU8 morph_open(const FrameU8& mask, int radius) {
  return dilate(erode(mask, radius), radius);
}

FrameU8 morph_close(const FrameU8& mask, int radius) {
  return erode(dilate(mask, radius), radius);
}

FrameU8 median3(const FrameU8& mask) {
  const int w = mask.width(), h = mask.height();
  FrameU8 out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int fg = 0, total = 0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= w || yy < 0 || yy >= h) continue;
          ++total;
          fg += (mask.at(xx, yy) != 0);
        }
      // Strict majority: ties (even-sized border windows only) clear to
      // background. The fused device despeckle must match this exactly.
      out.at(x, y) = (2 * fg > total) ? 255 : 0;
    }
  }
  return out;
}

}  // namespace mog
