// Connected-component labeling and blob extraction on binary masks — the
// bridge from per-pixel foreground to object-level detections.
#pragma once

#include <cstdint>
#include <vector>

#include "mog/common/image.hpp"

namespace mog {

struct Blob {
  int id = 0;
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;  ///< inclusive bbox
  int area = 0;                                    ///< pixels
  double centroid_x = 0, centroid_y = 0;

  int width() const { return max_x - min_x + 1; }
  int height() const { return max_y - min_y + 1; }
  /// Fraction of the bounding box covered by the blob.
  double fill_ratio() const {
    const double box = static_cast<double>(width()) * height();
    return box > 0 ? static_cast<double>(area) / box : 0.0;
  }
};

struct LabeledComponents {
  Image<std::int32_t> labels;  ///< -1 = background, otherwise blob id
  std::vector<Blob> blobs;
};

/// 4-connected component labeling; any nonzero pixel is foreground.
LabeledComponents label_components(const FrameU8& mask);

/// Convenience: blobs with at least `min_area` pixels, largest first.
std::vector<Blob> find_blobs(const FrameU8& mask, int min_area = 1);

/// Render a blob list back into a mask (255 inside kept blobs).
FrameU8 blobs_to_mask(const LabeledComponents& components, int min_area);

}  // namespace mog
