// Binary-mask morphology for foreground cleanup.
//
// Background-subtraction masks carry salt-and-pepper noise (isolated false
// positives) and small holes inside objects; morphological opening/closing
// is the standard cleanup pass the paper's reference implementation
// (Cheung & Kamath, "Robust background subtraction with foreground
// validation") applies before downstream processing.
//
// All operations treat any nonzero pixel as foreground and produce strict
// 0/255 output. Structuring element: square of (2*radius+1)^2.
#pragma once

#include "mog/common/image.hpp"

namespace mog {

/// Erosion: a pixel survives only if every pixel of the structuring
/// element's neighbourhood is foreground. Out-of-frame pads with the
/// operation's identity (foreground), keeping closing extensive at borders
/// (mask ⊆ close(mask) everywhere, including edge and corner pixels).
FrameU8 erode(const FrameU8& mask, int radius = 1);

/// Dilation: a pixel lights up if any neighbourhood pixel is foreground.
/// Out-of-frame pads with the identity (background): nothing outside the
/// frame can light an in-frame pixel.
FrameU8 dilate(const FrameU8& mask, int radius = 1);

/// Opening (erode then dilate): removes specks smaller than the element.
FrameU8 morph_open(const FrameU8& mask, int radius = 1);

/// Closing (dilate then erode): fills holes/gaps smaller than the element.
FrameU8 morph_close(const FrameU8& mask, int radius = 1);

/// 3x3 binary median (majority of the 9-neighbourhood): despeckles while
/// preserving object boundaries better than opening. The window SHRINKS at
/// frame borders (6 pixels on an edge, 4 in a corner), and the strict
/// majority test `2*fg > total` resolves exact ties (possible only in the
/// even-sized border windows) to BACKGROUND — e.g. a corner pixel with 2 of
/// its 4 window pixels foreground clears. Host and device despeckle both
/// pin this tie-break; see test_postproc.cpp.
FrameU8 median3(const FrameU8& mask);

}  // namespace mog
