#include "mog/postproc/components.hpp"

#include <algorithm>

namespace mog {

LabeledComponents label_components(const FrameU8& mask) {
  const int w = mask.width(), h = mask.height();
  LabeledComponents result{Image<std::int32_t>(w, h, -1), {}};

  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < mask.size(); ++start) {
    if (mask[start] == 0 || result.labels[start] >= 0) continue;
    Blob blob;
    blob.id = static_cast<int>(result.blobs.size());
    blob.min_x = w;
    blob.min_y = h;
    std::int64_t sum_x = 0, sum_y = 0;

    stack.assign(1, start);
    result.labels[start] = blob.id;
    while (!stack.empty()) {
      const std::size_t p = stack.back();
      stack.pop_back();
      const int x = static_cast<int>(p % static_cast<std::size_t>(w));
      const int y = static_cast<int>(p / static_cast<std::size_t>(w));
      blob.min_x = std::min(blob.min_x, x);
      blob.max_x = std::max(blob.max_x, x);
      blob.min_y = std::min(blob.min_y, y);
      blob.max_y = std::max(blob.max_y, y);
      sum_x += x;
      sum_y += y;
      ++blob.area;

      constexpr int kDx[] = {1, -1, 0, 0};
      constexpr int kDy[] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        const int nx = x + kDx[d], ny = y + kDy[d];
        if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
        const std::size_t q =
            static_cast<std::size_t>(ny) * static_cast<std::size_t>(w) + nx;
        if (mask[q] != 0 && result.labels[q] < 0) {
          result.labels[q] = blob.id;
          stack.push_back(q);
        }
      }
    }
    blob.centroid_x = static_cast<double>(sum_x) / blob.area;
    blob.centroid_y = static_cast<double>(sum_y) / blob.area;
    result.blobs.push_back(blob);
  }
  return result;
}

std::vector<Blob> find_blobs(const FrameU8& mask, int min_area) {
  std::vector<Blob> blobs = label_components(mask).blobs;
  std::erase_if(blobs,
                [min_area](const Blob& b) { return b.area < min_area; });
  std::sort(blobs.begin(), blobs.end(),
            [](const Blob& a, const Blob& b) { return a.area > b.area; });
  return blobs;
}

FrameU8 blobs_to_mask(const LabeledComponents& components, int min_area) {
  std::vector<bool> keep(components.blobs.size(), false);
  for (const Blob& b : components.blobs)
    keep[static_cast<std::size_t>(b.id)] = b.area >= min_area;
  FrameU8 out(components.labels.width(), components.labels.height(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::int32_t id = components.labels[i];
    if (id >= 0 && keep[static_cast<std::size_t>(id)]) out[i] = 255;
  }
  return out;
}

}  // namespace mog
