// Per-frame trace context.
//
// A frame ticket is a process-unique id minted when a frame enters a
// serving queue. It rides in serve::QueuedFrame through the scheduler, and
// a thread-local FrameTicketScope makes it visible to the layers below
// (ResilientPipeline recovery events) without threading an argument through
// every signature. The serving layer emits Chrome-trace flow events keyed
// on the ticket at each hop — queue admission, upload window, kernel
// window, download completion — so one frame's whole journey renders as a
// connected arrow chain across trace tracks, and a recovery instant can
// name exactly which frame it salvaged.
//
// Ticket 0 means "no ticket" everywhere.
#pragma once

#include <cstdint>

namespace mog::obs {

/// Next process-unique ticket id (starts at 1; thread-safe).
std::uint64_t mint_frame_ticket();

/// The ticket of the frame currently being processed on this thread,
/// or 0 when none is in scope.
std::uint64_t current_frame_ticket();

/// RAII scope installing `ticket` as this thread's current frame ticket.
class FrameTicketScope {
 public:
  explicit FrameTicketScope(std::uint64_t ticket);
  ~FrameTicketScope();

  FrameTicketScope(const FrameTicketScope&) = delete;
  FrameTicketScope& operator=(const FrameTicketScope&) = delete;

 private:
  std::uint64_t previous_;
};

}  // namespace mog::obs
