// Exporters for sampled FlameProfiles (see sampler.hpp):
//  * collapsed-stack text — one "thread;frame;frame count" line per stack,
//    the input format of Brendan Gregg's flamegraph.pl;
//  * speedscope JSON — load the file at https://speedscope.app;
//  * a terminal top-N table for `mogprof --flame`;
//  * a report block for embedding in schema-v1 BENCH_*.json.
// parse_collapsed() round-trips the text format so profiles can be
// re-rendered (and regression-tested) from the artifact alone.
#pragma once

#include <string>

#include "mog/obs/http_server.hpp"
#include "mog/obs/sampler.hpp"
#include "mog/telemetry/json.hpp"

namespace mog::obs {

/// Collapsed-stack text. Stacks render as "thread;frame;... count\n";
/// idle observations (empty published stack) render as "thread;(idle) N".
/// Deterministic: follows the profile's stack order.
std::string render_collapsed(const FlameProfile& profile);

/// Parse collapsed-stack text back into a profile. Stack counts, threads
/// and frames round-trip exactly; rate metadata (hz/seconds/ticks) is not
/// part of the format and comes back zero. "(idle)" leaves fold back into
/// the idle tally. Throws mog::Error on malformed lines.
FlameProfile parse_collapsed(const std::string& text);

/// Speedscope-compatible JSON ("sampled" profile type, one profile per
/// thread, weights = sample counts).
telemetry::Json render_speedscope(const FlameProfile& profile);

/// Compact JSON block for BENCH_*.json reports: capture metadata plus
/// stacks as {"stack": "thread;frame;...", "count": N} entries.
telemetry::Json profile_report_json(const FlameProfile& profile);

/// Inverse of profile_report_json (mogprof --flame reads either this block
/// out of a BENCH_*.json or a raw .collapsed file).
FlameProfile profile_from_report_json(const telemetry::Json& prof);

/// Terminal table: per-frame self/total sample shares, hottest first.
std::string render_flame_table(const FlameProfile& profile, int top_n = 20);

/// The GET /profilez handler, shared by StreamServer and DeviceFleet.
/// Blocks the (single) observability server thread while it captures from
/// Sampler::global() — bounded by the clamp on `seconds`.
///   ?seconds=N  capture window, (0, 30], default 1
///   ?hz=M       sampling rate, [1, 10000], default 997
///   ?format=    collapsed (default) | speedscope | table
/// Out-of-range or unknown values get 400; a capture already in flight
/// gets 503. The sampler is process-global, so on a fleet every device
/// plane's threads appear in one capture regardless of which node's
/// endpoint was hit.
HttpResponse profilez_response(const HttpRequest& request);

}  // namespace mog::obs
