#include "mog/obs/flame.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <set>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"

namespace mog::obs {

namespace {

constexpr const char* kIdleFrame = "(idle)";

std::uint64_t parse_count(std::string_view text, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  MOG_CHECK(ec == std::errc{} && ptr == text.data() + text.size(),
            strprintf("collapsed stack line %zu: bad sample count", line_no));
  return value;
}

std::vector<std::string> split_frames(std::string_view text) {
  std::vector<std::string> frames;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    const std::size_t end = semi == std::string_view::npos ? text.size() : semi;
    frames.emplace_back(text.substr(start, end - start));
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  return frames;
}

}  // namespace

std::string render_collapsed(const FlameProfile& profile) {
  std::string out;
  for (const FlameStack& stack : profile.stacks) {
    out += stack.thread;
    if (stack.frames.empty()) {
      out += ";";
      out += kIdleFrame;
    } else {
      for (const std::string& frame : stack.frames) {
        out += ';';
        out += frame;
      }
    }
    out += strprintf(" %llu\n",
                     static_cast<unsigned long long>(stack.count));
  }
  return out;
}

FlameProfile parse_collapsed(const std::string& text) {
  FlameProfile profile;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol;
    std::string_view line{text.data() + pos, end - pos};
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;

    const std::size_t space = line.rfind(' ');
    MOG_CHECK(space != std::string_view::npos && space > 0,
              strprintf("collapsed stack line %zu: missing count", line_no));
    FlameStack stack;
    stack.count = parse_count(line.substr(space + 1), line_no);
    std::vector<std::string> frames = split_frames(line.substr(0, space));
    MOG_CHECK(!frames.empty() && !frames.front().empty(),
              strprintf("collapsed stack line %zu: empty thread", line_no));
    stack.thread = std::move(frames.front());
    frames.erase(frames.begin());
    MOG_CHECK(std::none_of(frames.begin(), frames.end(),
                           [](const std::string& f) { return f.empty(); }),
              strprintf("collapsed stack line %zu: empty frame", line_no));
    if (frames.size() == 1 && frames.front() == kIdleFrame) {
      profile.idle += stack.count;  // idle marker folds back to empty frames
    } else {
      stack.frames = std::move(frames);
      profile.samples += stack.count;
    }
    profile.stacks.push_back(std::move(stack));
  }
  return profile;
}

telemetry::Json render_speedscope(const FlameProfile& profile) {
  using telemetry::Json;

  // Global frame table; stacks reference frames by index.
  std::map<std::string, std::size_t> frame_index;
  Json frames = Json::array();
  const auto intern = [&](const std::string& name) {
    const auto [it, inserted] = frame_index.emplace(name, frame_index.size());
    if (inserted) {
      Json frame = Json::object();
      frame.set("name", name);
      frames.push_back(std::move(frame));
    }
    return it->second;
  };

  // One speedscope profile per thread, in first-seen (hottest-first) order.
  std::vector<std::string> threads;
  std::map<std::string, std::pair<Json, Json>> per_thread;  // samples, weights
  std::map<std::string, std::uint64_t> thread_total;
  for (const FlameStack& stack : profile.stacks) {
    auto it = per_thread.find(stack.thread);
    if (it == per_thread.end()) {
      threads.push_back(stack.thread);
      it = per_thread.emplace(stack.thread,
                              std::make_pair(Json::array(), Json::array()))
               .first;
    }
    Json sample = Json::array();
    if (stack.frames.empty()) {
      sample.push_back(static_cast<std::uint64_t>(intern(kIdleFrame)));
    } else {
      for (const std::string& frame : stack.frames)
        sample.push_back(static_cast<std::uint64_t>(intern(frame)));
    }
    it->second.first.push_back(std::move(sample));
    it->second.second.push_back(stack.count);
    thread_total[stack.thread] += stack.count;
  }

  Json profiles = Json::array();
  for (const std::string& thread : threads) {
    auto& [samples, weights] = per_thread.at(thread);
    Json entry = Json::object();
    entry.set("type", "sampled");
    entry.set("name", thread);
    entry.set("unit", "none");
    entry.set("startValue", std::uint64_t{0});
    entry.set("endValue", thread_total.at(thread));
    entry.set("samples", std::move(samples));
    entry.set("weights", std::move(weights));
    profiles.push_back(std::move(entry));
  }

  Json shared = Json::object();
  shared.set("frames", std::move(frames));
  Json doc = Json::object();
  doc.set("$schema", "https://www.speedscope.app/file-format-schema.json");
  doc.set("name", strprintf("mog sampler (%d hz, %.2fs)", profile.hz,
                            profile.seconds));
  doc.set("exporter", "mogprof");
  doc.set("activeProfileIndex", std::uint64_t{0});
  doc.set("shared", std::move(shared));
  doc.set("profiles", std::move(profiles));
  return doc;
}

telemetry::Json profile_report_json(const FlameProfile& profile) {
  using telemetry::Json;
  Json prof = Json::object();
  prof.set("hz", profile.hz);
  prof.set("seconds", profile.seconds);
  prof.set("ticks", profile.ticks);
  prof.set("samples", profile.samples);
  prof.set("idle", profile.idle);
  prof.set("truncated", profile.truncated);
  Json stacks = Json::array();
  for (const FlameStack& stack : profile.stacks) {
    std::string flat = stack.thread;
    for (const std::string& frame : stack.frames) {
      flat += ';';
      flat += frame;
    }
    if (stack.frames.empty()) {
      flat += ';';
      flat += kIdleFrame;
    }
    Json entry = Json::object();
    entry.set("stack", std::move(flat));
    entry.set("count", stack.count);
    stacks.push_back(std::move(entry));
  }
  prof.set("stacks", std::move(stacks));
  return prof;
}

FlameProfile profile_from_report_json(const telemetry::Json& prof) {
  const auto u64 = [&](const char* key) -> std::uint64_t {
    const telemetry::Json* v = prof.find(key);
    return v != nullptr && v->is_number()
               ? static_cast<std::uint64_t>(v->as_number())
               : 0;
  };
  FlameProfile profile;
  profile.hz = static_cast<int>(u64("hz"));
  if (const telemetry::Json* v = prof.find("seconds"); v && v->is_number())
    profile.seconds = v->as_number();
  profile.ticks = u64("ticks");
  profile.truncated = u64("truncated");
  const telemetry::Json* stacks = prof.find("stacks");
  MOG_CHECK(stacks != nullptr && stacks->is_array(),
            "prof block has no stacks array");
  std::string collapsed;
  for (const telemetry::Json& entry : stacks->as_array()) {
    const telemetry::Json* flat = entry.find("stack");
    const telemetry::Json* count = entry.find("count");
    MOG_CHECK(flat != nullptr && flat->is_string() && count != nullptr &&
                  count->is_number(),
              "malformed prof stack entry");
    collapsed += flat->as_string();
    collapsed += strprintf(
        " %llu\n",
        static_cast<unsigned long long>(count->as_number()));
  }
  FlameProfile parsed = parse_collapsed(collapsed);
  profile.stacks = std::move(parsed.stacks);
  profile.samples = parsed.samples;
  profile.idle = parsed.idle;
  return profile;
}

HttpResponse profilez_response(const HttpRequest& request) {
  HttpResponse bad;
  bad.status = 400;

  double seconds = 1.0;
  int hz = 997;
  std::string format = "collapsed";
  try {
    if (const std::string* v = request.param("seconds"))
      seconds = parse_double(*v, 1e-3, 30.0, "?seconds");
    if (const std::string* v = request.param("hz"))
      hz = parse_int(*v, 1, 10000, "?hz");
  } catch (const Error& e) {
    bad.body = std::string(e.what()) + "\n";
    return bad;
  }
  if (const std::string* v = request.param("format")) format = *v;
  if (format != "collapsed" && format != "speedscope" && format != "table") {
    bad.body = "?format must be collapsed, speedscope, or table\n";
    return bad;
  }

  FlameProfile profile;
  if (!Sampler::global().try_capture(seconds, hz, profile)) {
    HttpResponse busy;
    busy.status = 503;
    busy.body = "a profile capture is already in flight\n";
    return busy;
  }

  HttpResponse ok;
  if (format == "speedscope") {
    ok.content_type = "application/json; charset=utf-8";
    ok.body = render_speedscope(profile).dump(2) + "\n";
  } else if (format == "table") {
    ok.body = render_flame_table(profile);
  } else {
    ok.body = render_collapsed(profile);
  }
  return ok;
}

std::string render_flame_table(const FlameProfile& profile, int top_n) {
  std::uint64_t total_observations = 0;
  std::map<std::string, std::uint64_t> self, total;
  for (const FlameStack& stack : profile.stacks) {
    total_observations += stack.count;
    if (stack.frames.empty()) {
      self[kIdleFrame] += stack.count;
      total[kIdleFrame] += stack.count;
      continue;
    }
    self[stack.frames.back()] += stack.count;
    const std::set<std::string> unique(stack.frames.begin(),
                                       stack.frames.end());
    for (const std::string& frame : unique) total[frame] += stack.count;
  }

  std::string out;
  out += strprintf("flame: %d hz, %.2fs, %llu ticks, %llu samples", profile.hz,
                   profile.seconds,
                   static_cast<unsigned long long>(profile.ticks),
                   static_cast<unsigned long long>(profile.samples));
  if (profile.truncated > 0)
    out += strprintf(" (%llu truncated pushes)",
                     static_cast<unsigned long long>(profile.truncated));
  out += "\n";
  if (total_observations == 0) {
    out += "  (no samples; was anything running?)\n";
    return out;
  }

  std::vector<std::pair<std::string, std::uint64_t>> rows(self.begin(),
                                                          self.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  out += strprintf("  %-20s %9s %9s %12s\n", "frame", "self%", "total%",
                   "samples");
  int shown = 0;
  for (const auto& [frame, self_count] : rows) {
    if (shown++ >= top_n) break;
    const double denom = static_cast<double>(total_observations);
    out += strprintf("  %-20s %8.1f%% %8.1f%% %12llu\n", frame.c_str(),
                     100.0 * static_cast<double>(self_count) / denom,
                     100.0 * static_cast<double>(total[frame]) / denom,
                     static_cast<unsigned long long>(self_count));
  }
  return out;
}

}  // namespace mog::obs
