#include "mog/obs/frame_ticket.hpp"

#include <atomic>

namespace mog::obs {

namespace {
std::atomic<std::uint64_t> g_next_ticket{1};
thread_local std::uint64_t t_current_ticket = 0;
}  // namespace

std::uint64_t mint_frame_ticket() {
  return g_next_ticket.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_frame_ticket() { return t_current_ticket; }

FrameTicketScope::FrameTicketScope(std::uint64_t ticket)
    : previous_(t_current_ticket) {
  t_current_ticket = ticket;
}

FrameTicketScope::~FrameTicketScope() { t_current_ticket = previous_; }

}  // namespace mog::obs
