// nvprof-style digestion of counter dumps (the `mogprof` CLI's engine).
//
// A "counter dump" is either a schema-v1 bench report (BENCH_*.json, one
// kernel per case via its ctr_* metrics) or a CounterRegistry::to_json()
// dump (one aggregate kernel from the per-launch means). Loading
// reconstructs gpusim::KernelStats per kernel and re-derives what a real
// profiler would show: branch divergence, coalescing efficiency, occupancy
// (recomputed from the launch resources via the CC 2.0 occupancy rules),
// the analytical kernel time, achieved DRAM bandwidth against the device
// peak, and a memory-/compute-bound roofline classification.
//
// Two reports compose into the paper's measurement story: a dump whose
// cases are optimization levels (A..F) renders a per-step attribution table
// (which counter each step moved, annotated with the step's description),
// and --diff mode compares two dumps kernel by kernel.
#pragma once

#include <string>
#include <vector>

#include "mog/gpusim/device_spec.hpp"
#include "mog/gpusim/occupancy.hpp"
#include "mog/gpusim/stats.hpp"
#include "mog/gpusim/timing_model.hpp"
#include "mog/telemetry/json.hpp"

namespace mog::obs {

struct KernelProfile {
  std::string name;             ///< case name ("A".."F", "g8", "aggregate")
  gpusim::KernelStats stats;    ///< reconstructed per-frame counters
  gpusim::Occupancy occupancy;  ///< recomputed from the launch resources
  gpusim::KernelTiming timing;  ///< analytical model on the counters

  double divergence() const { return 1.0 - stats.branch_efficiency(); }
  double coalescing_efficiency() const {
    return stats.memory_access_efficiency();
  }
  double uncoalesced_share() const { return 1.0 - coalescing_efficiency(); }

  /// Achieved DRAM bandwidth over the modeled kernel time.
  double dram_gbps() const {
    return timing.total_seconds > 0
               ? static_cast<double>(stats.bytes_transferred()) /
                     timing.total_seconds / 1e9
               : 0.0;
  }

  bool memory_bound() const {
    return std::string{timing.bound_by} == "bandwidth";
  }
};

struct ProfileDump {
  std::string source;  ///< file path or report name
  gpusim::DeviceSpec spec;
  int width = 0, height = 0, frames = 0;
  std::vector<KernelProfile> kernels;

  const KernelProfile* find(const std::string& name) const;
};

/// Parse a dump document (bench report or CounterRegistry dump). Throws
/// mog::Error when the document is neither, or carries no counter data.
ProfileDump load_profile_dump(const telemetry::Json& doc,
                              const std::string& source = "",
                              const gpusim::DeviceSpec& spec = {});

/// read_json_file + load_profile_dump.
ProfileDump load_profile_file(const std::string& path,
                              const gpusim::DeviceSpec& spec = {});

/// Per-kernel profiler table (one row per kernel, roofline verdict last).
std::string render_profile_table(const ProfileDump& dump);

/// Optimization-step attribution: consecutive deltas over the cases that
/// name optimization levels (A..F), annotated with each step's description.
/// Empty string when the dump holds fewer than two such cases.
std::string render_step_report(const ProfileDump& dump);

/// Kernel-by-kernel comparison of two dumps (--diff mode). Kernels missing
/// from either side are listed, not diffed.
std::string render_profile_diff(const ProfileDump& baseline,
                                const ProfileDump& fresh);

}  // namespace mog::obs
