// Low-overhead host sampling profiler: where does the *wall clock* go?
//
// The counter plane (telemetry::CounterRegistry, mogprof) attributes
// *modeled* GPU time. This file attributes *host* time: each hot thread
// (block-executor worker, serve pump, decode worker) publishes a small
// fixed-depth stack of phase tags through relaxed atomics, and a sampler
// thread walks the published stacks at a configurable rate, aggregating
// (thread, tag-path) -> sample counts. Exporters in flame.hpp turn the
// aggregate into collapsed-stack text (flamegraph.pl), speedscope JSON,
// and a terminal top-N table (mogprof --flame).
//
// Design rules (DESIGN.md §13):
//  * Sampling, not tracing: a tag push/pop is 2-3 relaxed stores, paid only
//    while a sampler runs; there is no per-event buffer to fill, so the
//    overhead is bounded by tag-site frequency, not by workload size.
//  * Disabled cost is one relaxed load + predictable branch per tag site
//    (prof_enabled below) — no locks, no TLS guards, no allocation.
//  * The profiler only ever *reads* simulation state; counters, masks and
//    goldens are bit-identical with the sampler on or off.
//  * Torn reads are acceptable: the sampler may observe a stack mid-update
//    and misattribute that single sample. At 997 hz against millions of tag
//    events per second the error is statistical noise.
//
// The hot-path primitives are header-only on purpose: gpusim's interpreter
// places tags (warp dispatch, Coalescer::access, DRAM row replay) but must
// not link mog_obs — everything a tag site touches is an inline global.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mog::obs {

// ---------------------------------------------------------------------------
// Tag vocabulary
// ---------------------------------------------------------------------------

/// Fixed set of profiled phases. A fixed enum (not interned strings) keeps
/// the push a single byte store and the sampler's decode trivial.
enum class ProfTag : std::uint8_t {
  kIdle = 0,         ///< reserved: rendered for empty published stacks
  kKernelLaunch,     ///< Device::run_blocks (launching thread, whole launch)
  kWarpDispatch,     ///< BlockCtx::parallel — interpreting a block's warps
  kCoalescerAccess,  ///< Coalescer::access — one warp memory instruction
  kChargeFlush,      ///< per-warp issue-charge fold into KernelStats
  kDramRowReplay,    ///< block-order page-trace replay after a parallel launch
  kStatsMerge,       ///< per-worker stats fold + StatsSink delivery
  kQueueWait,        ///< executor worker / serve pump waiting for work
  kPump,             ///< serve scheduling round (ingest/deliver/compute)
  kUpload,           ///< host->device frame upload
  kDownload,         ///< device->host mask download
  kPostproc,         ///< mask post-processing launches (device or host)
  kDecode,           ///< ingest decode (Y4M/JPEG) of one frame
  kCount
};

inline const char* to_string(ProfTag tag) {
  switch (tag) {
    case ProfTag::kIdle: return "(idle)";
    case ProfTag::kKernelLaunch: return "kernel_launch";
    case ProfTag::kWarpDispatch: return "warp_dispatch";
    case ProfTag::kCoalescerAccess: return "coalescer_access";
    case ProfTag::kChargeFlush: return "charge_flush";
    case ProfTag::kDramRowReplay: return "dram_row_replay";
    case ProfTag::kStatsMerge: return "stats_merge";
    case ProfTag::kQueueWait: return "queue_wait";
    case ProfTag::kPump: return "pump";
    case ProfTag::kUpload: return "upload";
    case ProfTag::kDownload: return "download";
    case ProfTag::kPostproc: return "postproc";
    case ProfTag::kDecode: return "decode";
    case ProfTag::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Published tag stacks (hot path)
// ---------------------------------------------------------------------------

/// Published stack depth. Deeper nesting still *counts* pushes (so pops
/// balance) but the tags beyond this depth are dropped and recorded in
/// ProfSlot::truncated — see the overflow test in test_obs.cpp.
inline constexpr std::uint32_t kProfMaxDepth = 16;

/// Concurrently profiled threads. A thread beyond the pool simply goes
/// unprofiled (ProfSpan no-ops); nothing breaks.
inline constexpr int kProfMaxThreads = 512;

/// One thread's published state. All fields are relaxed atomics: the owner
/// thread writes, the sampler thread reads, and a torn observation costs one
/// misattributed sample.
struct ProfSlot {
  static constexpr int kNameBytes = 24;
  std::atomic<std::uint32_t> state{0};  ///< 0 free, 1 claimed
  std::atomic<std::uint32_t> depth{0};  ///< pushes minus pops (may exceed max)
  std::atomic<std::uint8_t> tags[kProfMaxDepth] = {};
  std::atomic<std::uint64_t> truncated{0};  ///< pushes beyond kProfMaxDepth
  std::atomic<char> name[kNameBytes] = {};  ///< NUL-padded thread label
};

namespace detail {

struct ProfRegistry {
  std::atomic<bool> enabled{false};
  std::atomic<int> high_water{0};  ///< slots ever claimed (scan bound)
  ProfSlot slots[kProfMaxThreads];
};

inline constinit ProfRegistry g_prof_registry{};

/// The per-site disabled-cost gate: one relaxed load.
inline bool prof_enabled() {
  return g_prof_registry.enabled.load(std::memory_order_relaxed);
}

/// Raw cached slot pointer; constinit so hot-path access is a plain TLS
/// load with no dynamic-init guard.
inline thread_local constinit ProfSlot* tl_prof_slot = nullptr;
inline thread_local constinit bool tl_prof_slot_denied = false;

/// Frees the slot when the owning thread exits (separate from tl_prof_slot
/// so only the cold claim path touches a TLS object with a destructor).
struct ProfSlotLease {
  ProfSlot* slot = nullptr;
  ~ProfSlotLease() {
    if (slot == nullptr) return;
    slot->depth.store(0, std::memory_order_relaxed);
    slot->state.store(0, std::memory_order_release);
  }
};
inline thread_local ProfSlotLease tl_prof_lease{};

inline void prof_store_name(ProfSlot& slot, const char* name) {
  int i = 0;
  for (; name[i] != '\0' && i < ProfSlot::kNameBytes - 1; ++i)
    slot.name[i].store(name[i], std::memory_order_relaxed);
  for (; i < ProfSlot::kNameBytes; ++i)
    slot.name[i].store('\0', std::memory_order_relaxed);
}

/// Cold path: claim a slot for this thread (nullptr when the pool is full;
/// the failure is cached so a saturated pool costs nothing afterwards).
inline ProfSlot* prof_claim_slot() {
  if (tl_prof_slot_denied) return nullptr;
  ProfRegistry& reg = g_prof_registry;
  for (int i = 0; i < kProfMaxThreads; ++i) {
    std::uint32_t expect = 0;
    if (!reg.slots[i].state.compare_exchange_strong(
            expect, 1, std::memory_order_acq_rel, std::memory_order_relaxed))
      continue;
    ProfSlot& slot = reg.slots[i];
    slot.depth.store(0, std::memory_order_relaxed);
    slot.truncated.store(0, std::memory_order_relaxed);
    prof_store_name(slot, "thread");
    int hw = reg.high_water.load(std::memory_order_relaxed);
    while (hw < i + 1 && !reg.high_water.compare_exchange_weak(
                             hw, i + 1, std::memory_order_release,
                             std::memory_order_relaxed)) {
    }
    tl_prof_slot = &slot;
    tl_prof_lease.slot = &slot;
    return &slot;
  }
  tl_prof_slot_denied = true;
  return nullptr;
}

inline ProfSlot* prof_slot() {
  ProfSlot* slot = tl_prof_slot;
  return slot != nullptr ? slot : prof_claim_slot();
}

}  // namespace detail

/// Label the calling thread in profiles ("exec3", "dev0.pump", "decode1").
/// Claims the thread's slot eagerly so the name is in place before the
/// first sample; call once near thread start. Unnamed threads appear as
/// "thread". Truncated to 23 bytes.
inline void prof_set_thread_name(const char* name) {
  if (ProfSlot* slot = detail::prof_slot()) detail::prof_store_name(*slot, name);
}

/// RAII phase tag. Place at a hot phase boundary; while a sampler runs, the
/// tag is visible on this thread's published stack for the span's lifetime.
/// When no sampler runs the constructor is one relaxed load + branch and the
/// destructor a no-op.
class ProfSpan {
 public:
  explicit ProfSpan(ProfTag tag) {
    if (!detail::prof_enabled()) return;
    ProfSlot* slot = detail::prof_slot();
    if (slot == nullptr) return;
    const std::uint32_t d = slot->depth.load(std::memory_order_relaxed);
    if (d < kProfMaxDepth)
      slot->tags[d].store(static_cast<std::uint8_t>(tag),
                          std::memory_order_relaxed);
    else
      slot->truncated.fetch_add(1, std::memory_order_relaxed);
    slot->depth.store(d + 1, std::memory_order_relaxed);
    slot_ = slot;
  }
  ~ProfSpan() {
    if (slot_ == nullptr) return;
    slot_->depth.store(slot_->depth.load(std::memory_order_relaxed) - 1,
                       std::memory_order_relaxed);
  }

  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

 private:
  ProfSlot* slot_ = nullptr;  ///< non-null only if the ctor pushed
};

// ---------------------------------------------------------------------------
// Aggregated profiles + the sampler thread
// ---------------------------------------------------------------------------

/// One aggregated call stack. `frames` are tag names root-first; empty
/// frames mean the thread was idle (published stack empty) when sampled.
struct FlameStack {
  std::string thread;
  std::vector<std::string> frames;
  std::uint64_t count = 0;
};

struct FlameProfile {
  int hz = 0;
  double seconds = 0;          ///< wall time the sampler ran
  std::uint64_t ticks = 0;     ///< sampling ticks taken
  std::uint64_t samples = 0;   ///< non-idle stack observations
  std::uint64_t idle = 0;      ///< thread-ticks with an empty stack
  std::uint64_t truncated = 0; ///< tag pushes beyond kProfMaxDepth
  /// Deterministic order: count descending, then thread/frames ascending.
  std::vector<FlameStack> stacks;

  bool empty() const { return stacks.empty(); }
};

/// The sampler thread. One per process is the intended use (the published
/// slots are process-global), via global(); tests may build their own.
/// start/stop are thread-safe; only one instance may run at a time because
/// running is signalled through the global enable flag.
class Sampler {
 public:
  Sampler() = default;
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  static Sampler& global();

  /// Launch the sampling thread at `hz` samples/second (range-checked to
  /// [1, 20000]). Returns false when a sampler is already running — this
  /// instance or any other; the global enable flag arbitrates — without
  /// disturbing the running capture.
  bool start(int hz);

  /// Stop and join the sampling thread, folding its aggregate into the
  /// profile returned by take(). Idempotent.
  void stop();

  bool running() const;

  /// The aggregate of the last start()/stop() window. Call after stop();
  /// clears the stored profile. Throws while running.
  FlameProfile take();

  /// Convenience: start, sample for `seconds` (in (0, 60]), stop, take.
  /// Returns false (and leaves `out` untouched) when a capture is already
  /// in flight — the /profilez 503 path.
  bool try_capture(double seconds, int hz, FlameProfile& out);

 private:
  void loop();

  mutable std::mutex mu_;
  std::thread thread_;
  std::atomic<bool> stop_flag_{false};
  bool running_ = false;
  int hz_ = 0;
  std::chrono::steady_clock::time_point started_at_{};
  FlameProfile profile_;
};

}  // namespace mog::obs
