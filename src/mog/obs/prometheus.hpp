// Prometheus text-exposition (version 0.0.4) rendering.
//
// The exporter is a pure renderer: callers assemble MetricFamily values from
// whatever state they own (the serving layer renders its queues and
// recovery counters; helpers below render the shared telemetry sinks) and
// render() produces the `# HELP`/`# TYPE`-annotated text a Prometheus
// scraper ingests. Families keep insertion order so /metrics diffs cleanly
// between scrapes.
//
// Metric naming scheme (documented in README "Observability"): every family
// is prefixed `mog_`, subsystem second (`mog_serve_*`, `mog_kernel_*`,
// `mog_trace_*`, `mog_timeline_*`), with `_total` reserved for counters.
// Instance dimensions ride on labels: `stream="3"` for per-camera series,
// `kernel="D"` / `metric=...` / `stat=...` for per-kernel profiler rollups.
//
// validate_exposition() checks a rendered page against the text-format
// grammar (metric/label name charsets, escaping, TYPE/sample consistency,
// histogram le-bucket shape); tests run every rendered page through it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mog/telemetry/counters.hpp"
#include "mog/telemetry/trace.hpp"

namespace mog::obs {

using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kGauge, kCounter, kHistogram };

const char* to_string(MetricType type);

/// One sample of a gauge or counter family.
struct MetricSample {
  LabelSet labels;
  double value = 0;
};

/// One labelled histogram series: cumulative `le` buckets + sum + count.
struct HistogramSeries {
  LabelSet labels;
  std::vector<double> bounds;          ///< ascending; +Inf bucket implicit
  std::vector<std::uint64_t> counts;   ///< cumulative, size bounds.size() + 1
  double sum = 0;
  std::uint64_t count = 0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<MetricSample> samples;        ///< gauge / counter families
  std::vector<HistogramSeries> histograms;  ///< histogram families
};

/// Map an internal metric name onto the exposition charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): '.', '-', and other invalid bytes become '_'.
std::string sanitize_metric_name(const std::string& name);

/// Default bucket ladder for modeled latencies: 100 us to ~100 s,
/// roughly 1-2-5 per decade.
const std::vector<double>& default_latency_bounds();

/// Bucket raw samples into one histogram series.
HistogramSeries make_histogram(const std::vector<double>& samples,
                               LabelSet labels,
                               const std::vector<double>& bounds =
                                   default_latency_bounds());

/// Render families as a text-format page (ends with a newline).
std::string render(const std::vector<MetricFamily>& families);

/// Grammar check for a rendered page; returns "" when well-formed, else a
/// description of the first violation (with its line number).
std::string validate_exposition(const std::string& text);

/// CounterRegistry rollups as families: `mog_kernel_launches_total`, one
/// `mog_kernel_<metric>` gauge per kernel metric (stat="mean"/"p50"/"p99"
/// labels) plus `mog_kernel_<metric>_total` for extensive metrics, and one
/// `mog_<series>` histogram per custom series.
void append_counter_registry(const telemetry::CounterRegistry& registry,
                             std::vector<MetricFamily>& out);

/// TraceRecorder capacity / drop health: a truncated trace is visible on
/// /metrics before anyone opens the exported file.
void append_trace_health(const telemetry::TraceRecorder& recorder,
                         std::vector<MetricFamily>& out);

}  // namespace mog::obs
