#include "mog/obs/prometheus.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"

namespace mog::obs {

namespace {

bool valid_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool valid_name_char(char c) {
  return valid_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty() || !valid_name_start(name[0])) return false;
  return std::all_of(name.begin(), name.end(), valid_name_char);
}

bool valid_label_name(const std::string& name) {
  // Label names exclude ':' (reserved for recording rules).
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
        name[0] == '_'))
    return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  });
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out.push_back(c);
  }
  return out;
}

/// HELP text escaping per the text-exposition spec: only `\` and newline
/// are escaped (quotes are legal in HELP text). Without this, a help string
/// containing a newline splits the exposition mid-comment and the scraper
/// rejects the whole page.
std::string escape_help_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out.push_back(c);
  }
  return out;
}

std::string format_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15)
    return strprintf("%lld", static_cast<long long>(value));
  return strprintf("%.17g", value);
}

std::string render_labels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

LabelSet with_label(LabelSet labels, std::string key, std::string value) {
  labels.emplace_back(std::move(key), std::move(value));
  return labels;
}

void check_family(const MetricFamily& f) {
  MOG_CHECK(valid_metric_name(f.name), "invalid metric name: " + f.name);
  const auto check_labels = [&](const LabelSet& labels) {
    for (const auto& [k, v] : labels) {
      MOG_CHECK(valid_label_name(k),
                "invalid label name '" + k + "' in family " + f.name);
      (void)v;
    }
  };
  for (const MetricSample& s : f.samples) check_labels(s.labels);
  for (const HistogramSeries& h : f.histograms) {
    check_labels(h.labels);
    MOG_CHECK(h.counts.size() == h.bounds.size() + 1,
              "histogram bucket/bound mismatch in family " + f.name);
  }
  if (f.type == MetricType::kHistogram)
    MOG_CHECK(f.samples.empty(),
              "histogram family " + f.name + " carries scalar samples");
  else
    MOG_CHECK(f.histograms.empty(),
              "scalar family " + f.name + " carries histogram series");
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kGauge: return "gauge";
    case MetricType::kCounter: return "counter";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!valid_name_char(c)) c = '_';
  if (out.empty() || !valid_name_start(out[0])) out.insert(out.begin(), '_');
  return out;
}

const std::vector<double>& default_latency_bounds() {
  static const std::vector<double> bounds = {
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
      5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
      25.0, 100.0};
  return bounds;
}

HistogramSeries make_histogram(const std::vector<double>& samples,
                               LabelSet labels,
                               const std::vector<double>& bounds) {
  MOG_CHECK(std::is_sorted(bounds.begin(), bounds.end()),
            "histogram bounds must be ascending");
  HistogramSeries h;
  h.labels = std::move(labels);
  h.bounds = bounds;
  h.counts.assign(bounds.size() + 1, 0);
  for (const double v : samples) {
    h.sum += v;
    ++h.count;
    // Cumulative buckets: v lands in every bucket whose bound covers it.
    const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), v);
    for (std::size_t i = static_cast<std::size_t>(it - h.bounds.begin());
         i < h.counts.size(); ++i)
      ++h.counts[i];
  }
  return h;
}

std::string render(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const MetricFamily& f : families) {
    check_family(f);
    out += "# HELP " + f.name + " " + escape_help_text(f.help) + "\n";
    out += "# TYPE " + f.name + " ";
    out += to_string(f.type);
    out.push_back('\n');
    for (const MetricSample& s : f.samples)
      out += f.name + render_labels(s.labels) + " " + format_value(s.value) +
             "\n";
    for (const HistogramSeries& h : f.histograms) {
      for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
        const std::string le =
            i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf";
        out += f.name + "_bucket" +
               render_labels(with_label(h.labels, "le", le)) + " " +
               format_value(static_cast<double>(h.counts[i])) + "\n";
      }
      out += f.name + "_sum" + render_labels(h.labels) + " " +
             format_value(h.sum) + "\n";
      out += f.name + "_count" + render_labels(h.labels) + " " +
             format_value(static_cast<double>(h.count)) + "\n";
    }
  }
  return out;
}

namespace {

/// Strip a histogram sample suffix so `x_bucket` maps back to family `x`.
std::string histogram_base(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s{suffix};
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0)
      return name.substr(0, name.size() - s.size());
  }
  return name;
}

}  // namespace

std::string validate_exposition(const std::string& text) {
  std::map<std::string, std::string> declared_type;  // family -> type
  std::size_t line_no = 0;
  std::size_t pos = 0;
  const auto fail = [&](const std::string& why) {
    return strprintf("line %zu: %s", line_no, why.c_str());
  };

  if (!text.empty() && text.back() != '\n')
    return "exposition must end with a newline";

  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return fail("missing trailing newline");
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" or "# TYPE name kind" (anything else is a plain
      // comment per the format, but this renderer only emits those two).
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) return fail("malformed TYPE comment");
        const std::string name = rest.substr(0, sp);
        const std::string kind = rest.substr(sp + 1);
        if (!valid_metric_name(name))
          return fail("invalid metric name in TYPE: " + name);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          return fail("unknown metric type: " + kind);
        if (declared_type.count(name) != 0)
          return fail("duplicate TYPE for " + name);
        declared_type[name] = kind;
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name =
            sp == std::string::npos ? rest : rest.substr(0, sp);
        if (!valid_metric_name(name))
          return fail("invalid metric name in HELP: " + name);
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && valid_name_char(line[i])) ++i;
    const std::string name = line.substr(0, i);
    if (!valid_metric_name(name)) return fail("invalid sample metric name");

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t j = i;
        while (j < line.size() && line[j] != '=') ++j;
        if (j >= line.size()) return fail("unterminated label pair");
        if (!valid_label_name(line.substr(i, j - i)))
          return fail("invalid label name: " + line.substr(i, j - i));
        ++j;
        if (j >= line.size() || line[j] != '"')
          return fail("label value must be quoted");
        ++j;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\') {
            if (j + 1 >= line.size() ||
                (line[j + 1] != '\\' && line[j + 1] != '"' &&
                 line[j + 1] != 'n'))
              return fail("invalid escape in label value");
            ++j;
          }
          ++j;
        }
        if (j >= line.size()) return fail("unterminated label value");
        ++j;
        if (j < line.size() && line[j] == ',') ++j;
        i = j;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;  // '}'
    }

    if (i >= line.size() || line[i] != ' ')
      return fail("expected space before sample value");
    ++i;
    const std::string value = line.substr(i);
    if (value.empty()) return fail("missing sample value");
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      const std::string v{value};
      std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0')
        return fail("malformed sample value: " + value);
    }

    const std::string family = histogram_base(name);
    const auto it = declared_type.find(family) != declared_type.end()
                        ? declared_type.find(family)
                        : declared_type.find(name);
    if (it == declared_type.end())
      return fail("sample without a preceding TYPE: " + name);
    if (it->second == "histogram" && it->first == family && family != name) {
      // _bucket samples must carry an `le` label.
      if (name.size() >= 7 &&
          name.compare(name.size() - 7, 7, "_bucket") == 0 &&
          line.find("le=\"") == std::string::npos)
        return fail("histogram bucket sample without an le label");
    }
  }
  return "";
}

void append_counter_registry(const telemetry::CounterRegistry& registry,
                             std::vector<MetricFamily>& out) {
  {
    MetricFamily launches;
    launches.name = "mog_kernel_launches_total";
    launches.help = "Simulated kernel launches observed by the registry";
    launches.type = MetricType::kCounter;
    launches.samples.push_back(
        {{}, static_cast<double>(registry.launches())});
    out.push_back(std::move(launches));
  }

  for (const std::string& metric : registry.metric_names()) {
    const telemetry::Rollup r = registry.rollup(metric);
    const std::string base = "mog_kernel_" + sanitize_metric_name(metric);

    MetricFamily g;
    g.name = base;
    g.help = "Per-launch rollup of simulated profiler metric " + metric;
    g.type = MetricType::kGauge;
    g.samples.push_back({{{"stat", "mean"}}, r.mean});
    g.samples.push_back({{{"stat", "p50"}}, r.p50});
    g.samples.push_back({{{"stat", "p99"}}, r.p99});
    out.push_back(std::move(g));
  }

  for (const std::string& series : registry.custom_metric_names()) {
    MetricFamily h;
    h.name = "mog_" + sanitize_metric_name(series);
    h.help = "Distribution of custom series " + series;
    h.type = MetricType::kHistogram;
    h.histograms.push_back(make_histogram(registry.samples(series), {}));
    out.push_back(std::move(h));
  }
}

void append_trace_health(const telemetry::TraceRecorder& recorder,
                         std::vector<MetricFamily>& out) {
  MetricFamily events;
  events.name = "mog_trace_events";
  events.help = "Trace events currently held by the recorder";
  events.type = MetricType::kGauge;
  events.samples.push_back({{}, static_cast<double>(recorder.size())});
  out.push_back(std::move(events));

  MetricFamily capacity;
  capacity.name = "mog_trace_capacity";
  capacity.help = "Event capacity of the trace recorder";
  capacity.type = MetricType::kGauge;
  capacity.samples.push_back({{}, static_cast<double>(recorder.capacity())});
  out.push_back(std::move(capacity));

  MetricFamily dropped;
  dropped.name = "mog_trace_dropped_total";
  dropped.help = "Trace events dropped after the recorder filled";
  dropped.type = MetricType::kCounter;
  dropped.samples.push_back({{}, static_cast<double>(recorder.dropped())});
  out.push_back(std::move(dropped));
}

}  // namespace mog::obs
