#include "mog/obs/profile.hpp"

#include <cmath>
#include <cstdint>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"
#include "mog/kernels/opt_level.hpp"

namespace mog::obs {

namespace {

/// Flat name -> value view over either metric encoding (bench-report case
/// metrics with a "ctr_" prefix, or registry rollup means without one).
struct MetricView {
  std::vector<std::pair<std::string, double>> values;

  bool has(const std::string& name) const {
    for (const auto& [k, v] : values)
      if (k == name) return true;
    return false;
  }
  double get(const std::string& name, double fallback = 0.0) const {
    for (const auto& [k, v] : values)
      if (k == name) return v;
    return fallback;
  }
  std::uint64_t count(const std::string& name) const {
    const double v = get(name);
    return v > 0 ? static_cast<std::uint64_t>(std::llround(v)) : 0;
  }
};

KernelProfile build_profile(const std::string& name, const MetricView& m,
                            const gpusim::DeviceSpec& spec) {
  KernelProfile p;
  p.name = name;

  gpusim::KernelStats& s = p.stats;
  s.load_instructions = m.count("load_instructions");
  s.store_instructions = m.count("store_instructions");
  s.load_transactions = m.count("load_transactions");
  s.store_transactions = m.count("store_transactions");
  s.rmw_transactions = m.count("rmw_transactions");
  s.bytes_transferred_load = m.count("bytes_transferred_load");
  s.bytes_transferred_store = m.count("bytes_transferred_store");
  s.dram_page_switches = m.count("dram_page_switches");
  s.branches_executed = m.count("branches_executed");
  s.branches_divergent = m.count("branches_divergent");
  s.issue_cycles = m.count("issue_cycles");
  s.warp_instructions = m.count("warp_instructions");
  s.shared_accesses = m.count("shared_accesses");
  s.shared_cycles = m.count("shared_cycles");
  s.shared_bytes_per_block = m.count("shared_bytes_per_block");
  s.regs_per_thread = static_cast<int>(m.count("regs_per_thread"));
  s.threads_per_block = static_cast<int>(m.count("threads_per_block"));
  s.num_blocks = m.count("num_blocks");
  s.num_warps = m.count("num_warps");

  // Dumps export the memory-access-efficiency ratio but not the requested
  // bytes behind it; reconstruct requested bytes so the derived efficiency
  // on the rebuilt stats reproduces the dumped value.
  const double eff = m.get("memory_access_efficiency", 1.0);
  s.bytes_requested_load = static_cast<std::uint64_t>(
      std::llround(eff * static_cast<double>(s.bytes_transferred())));
  s.bytes_requested_store = 0;

  p.occupancy = gpusim::compute_occupancy(
      spec, s.regs_per_thread, s.threads_per_block, s.shared_bytes_per_block);
  p.timing = gpusim::kernel_time(s, p.occupancy, spec);
  return p;
}

constexpr const char* kCtrPrefix = "ctr_";

/// Case metrics -> MetricView, keeping only ctr_-prefixed keys (stripped).
MetricView ctr_view(const telemetry::Json& metrics) {
  MetricView m;
  for (const auto& [key, value] : metrics.as_object())
    if (key.rfind(kCtrPrefix, 0) == 0 && value.is_number())
      m.values.emplace_back(key.substr(4), value.as_number());
  return m;
}

std::string fmt_ms(double seconds) {
  return strprintf("%8.3f ms", seconds * 1e3);
}
std::string fmt_pct(double fraction) {
  return strprintf("%6.2f %%", fraction * 100.0);
}

const char* bound_label(const KernelProfile& p) {
  return p.memory_bound() ? "memory-bound" : "compute-bound";
}

/// The optimization levels present in the dump, in ladder order.
std::vector<const KernelProfile*> ladder_cases(const ProfileDump& dump) {
  std::vector<const KernelProfile*> out;
  for (const kernels::OptLevel level : kernels::kAllLevels)
    if (const KernelProfile* p = dump.find(kernels::to_string(level)))
      out.push_back(p);
  return out;
}

std::string delta_pp(double from, double to) {
  return strprintf("%+.2f pp", (to - from) * 100.0);
}

std::string delta_rel(double from, double to) {
  if (from == 0.0) return "n/a";
  return strprintf("%+.1f %%", (to / from - 1.0) * 100.0);
}

}  // namespace

const KernelProfile* ProfileDump::find(const std::string& name) const {
  for (const KernelProfile& k : kernels)
    if (k.name == name) return &k;
  return nullptr;
}

ProfileDump load_profile_dump(const telemetry::Json& doc,
                              const std::string& source,
                              const gpusim::DeviceSpec& spec) {
  ProfileDump dump;
  dump.source = source;
  dump.spec = spec;

  if (const telemetry::Json* cases = doc.find("cases")) {
    // Schema-v1 bench report: one kernel per case that carries counters.
    if (const telemetry::Json* workload = doc.find("workload")) {
      if (const telemetry::Json* w = workload->find("width"))
        dump.width = static_cast<int>(w->as_number());
      if (const telemetry::Json* h = workload->find("height"))
        dump.height = static_cast<int>(h->as_number());
      if (const telemetry::Json* f = workload->find("frames"))
        dump.frames = static_cast<int>(f->as_number());
    }
    for (const telemetry::Json& c : cases->as_array()) {
      const telemetry::Json* name = c.find("name");
      const telemetry::Json* metrics = c.find("metrics");
      if (name == nullptr || metrics == nullptr) continue;
      const MetricView m = ctr_view(*metrics);
      // Cases without counters (pure wall-clock benches) are not kernels.
      if (m.values.empty() || m.count("threads_per_block") == 0) continue;
      dump.kernels.push_back(build_profile(name->as_string(), m, spec));
    }
  } else if (const telemetry::Json* metrics = doc.find("metrics")) {
    // CounterRegistry::to_json(): rollups keyed by bare metric name; the
    // launch means reconstruct one aggregate kernel.
    MetricView m;
    for (const auto& [key, rollup] : metrics->as_object())
      if (const telemetry::Json* mean = rollup.find("mean"))
        m.values.emplace_back(key, mean->as_number());
    if (m.count("threads_per_block") > 0)
      dump.kernels.push_back(build_profile("aggregate", m, spec));
  } else {
    throw Error{strprintf(
        "%s: neither a bench report (cases) nor a counter dump (metrics)",
        source.empty() ? "<dump>" : source.c_str())};
  }

  MOG_CHECK(!dump.kernels.empty(),
            strprintf("%s: no kernel counters to profile",
                      source.empty() ? "<dump>" : source.c_str()));
  return dump;
}

ProfileDump load_profile_file(const std::string& path,
                              const gpusim::DeviceSpec& spec) {
  return load_profile_dump(telemetry::read_json_file(path), path, spec);
}

std::string render_profile_table(const ProfileDump& dump) {
  std::string out = strprintf("mogprof — %s\n", dump.source.c_str());
  out += strprintf("device: %s", dump.spec.name.c_str());
  if (dump.width > 0)
    out += strprintf(", workload %dx%d x%d frames", dump.width, dump.height,
                     dump.frames);
  out += "\n\n";
  out += strprintf("%-10s %11s %10s %10s %10s %5s %6s %7s  %s\n", "kernel",
                   "time/frame", "divergence", "coalesce", "occupancy", "regs",
                   "GB/s", "%peak", "bound");
  for (const KernelProfile& k : dump.kernels) {
    const double peak_frac =
        dump.spec.dram_bandwidth_gbps > 0
            ? k.dram_gbps() / dump.spec.dram_bandwidth_gbps
            : 0.0;
    out += strprintf(
        "%-10s %s   %s   %s   %s %5d %6.1f %6.1f%%  %s (%s-limited)\n",
        k.name.c_str(), fmt_ms(k.timing.total_seconds).c_str(),
        fmt_pct(k.divergence()).c_str(),
        fmt_pct(k.coalescing_efficiency()).c_str(),
        fmt_pct(k.occupancy.achieved).c_str(), k.stats.regs_per_thread,
        k.dram_gbps(), peak_frac * 100.0, bound_label(k),
        gpusim::to_string(k.occupancy.limiter));
  }
  return out;
}

std::string render_step_report(const ProfileDump& dump) {
  const std::vector<const KernelProfile*> ladder = ladder_cases(dump);
  if (ladder.size() < 2) return "";

  std::string out =
      "optimization-step attribution (A..F ladder + fused-postproc G):\n";
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    const KernelProfile& a = *ladder[i - 1];
    const KernelProfile& b = *ladder[i];
    const char* what = "";
    for (const kernels::OptLevel level : kernels::kAllLevels)
      if (b.name == kernels::to_string(level)) what = kernels::describe(level);
    out += strprintf("\n  step %s -> %s  (%s)\n", a.name.c_str(),
                     b.name.c_str(), what);
    out += strprintf("    branch divergence  %s -> %s  (%s)\n",
                     fmt_pct(a.divergence()).c_str(),
                     fmt_pct(b.divergence()).c_str(),
                     delta_pp(a.divergence(), b.divergence()).c_str());
    out += strprintf(
        "    uncoalesced share  %s -> %s  (%s)\n",
        fmt_pct(a.uncoalesced_share()).c_str(),
        fmt_pct(b.uncoalesced_share()).c_str(),
        delta_pp(a.uncoalesced_share(), b.uncoalesced_share()).c_str());
    out += strprintf(
        "    gmem transactions  %8llu -> %8llu  (%s)\n",
        static_cast<unsigned long long>(a.stats.total_transactions()),
        static_cast<unsigned long long>(b.stats.total_transactions()),
        delta_rel(static_cast<double>(a.stats.total_transactions()),
                  static_cast<double>(b.stats.total_transactions()))
            .c_str());
    out += strprintf("    regs/thread        %8d -> %8d\n",
                     a.stats.regs_per_thread, b.stats.regs_per_thread);
    out += strprintf(
        "    occupancy          %s -> %s  (%s)\n",
        fmt_pct(a.occupancy.achieved).c_str(),
        fmt_pct(b.occupancy.achieved).c_str(),
        delta_pp(a.occupancy.achieved, b.occupancy.achieved).c_str());
    out += strprintf(
        "    modeled time/frame %s -> %s  (%s)\n",
        fmt_ms(a.timing.total_seconds).c_str(),
        fmt_ms(b.timing.total_seconds).c_str(),
        delta_rel(a.timing.total_seconds, b.timing.total_seconds).c_str());
  }
  return out;
}

std::string render_profile_diff(const ProfileDump& baseline,
                                const ProfileDump& fresh) {
  std::string out = strprintf("mogprof diff — baseline: %s\n               fresh:    %s\n\n",
                              baseline.source.c_str(), fresh.source.c_str());
  for (const KernelProfile& b : baseline.kernels) {
    const KernelProfile* f = fresh.find(b.name);
    if (f == nullptr) {
      out += strprintf("kernel %-8s only in baseline\n", b.name.c_str());
      continue;
    }
    out += strprintf("kernel %s:\n", b.name.c_str());
    out += strprintf(
        "  time/frame  %s -> %s  (%s)\n", fmt_ms(b.timing.total_seconds).c_str(),
        fmt_ms(f->timing.total_seconds).c_str(),
        delta_rel(b.timing.total_seconds, f->timing.total_seconds).c_str());
    out += strprintf("  divergence  %s -> %s  (%s)\n",
                     fmt_pct(b.divergence()).c_str(),
                     fmt_pct(f->divergence()).c_str(),
                     delta_pp(b.divergence(), f->divergence()).c_str());
    out += strprintf(
        "  coalescing  %s -> %s  (%s)\n",
        fmt_pct(b.coalescing_efficiency()).c_str(),
        fmt_pct(f->coalescing_efficiency()).c_str(),
        delta_pp(b.coalescing_efficiency(), f->coalescing_efficiency())
            .c_str());
    out += strprintf(
        "  occupancy   %s -> %s  (%s)\n", fmt_pct(b.occupancy.achieved).c_str(),
        fmt_pct(f->occupancy.achieved).c_str(),
        delta_pp(b.occupancy.achieved, f->occupancy.achieved).c_str());
    out += strprintf("  bound       %s -> %s\n", bound_label(b),
                     bound_label(*f));
  }
  for (const KernelProfile& f : fresh.kernels)
    if (baseline.find(f.name) == nullptr)
      out += strprintf("kernel %-8s only in fresh\n", f.name.c_str());
  return out;
}

}  // namespace mog::obs
