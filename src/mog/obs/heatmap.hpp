// Spatial hotspot attribution: which screen regions are expensive, and why.
//
// HeatmapSink is a gpusim::StatsSink that opts into the per-block stats
// seam (StatsSink::on_block_stats) and bins each block's counter delta into
// a coarse cell grid over the frame. The MoG kernels launch one thread per
// pixel in row-major order (the tiled variants keep blocks contiguous), so
// a block's linear thread range [first_thread, first_thread + threads) maps
// straight onto pixel indices; fused-epilogue launches with halo threads
// land approximately (documented in DESIGN.md §13), which is fine for a
// heatmap. Accumulation is mutex-guarded — block callbacks arrive
// concurrently from executor workers — and never touches the counters
// themselves, so masks/goldens stay bit-identical.
//
// The capture serializes to a small JSON doc ("mog-heatmap-v1", embedded in
// BENCH_*.json or written standalone); `mogprof --heatmap` renders PGM
// images (one per metric, normalized) plus CSV grids and a terminal
// summary.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mog/gpusim/stats.hpp"
#include "mog/telemetry/json.hpp"

namespace mog::obs {

/// A captured heatmap: raw per-cell accumulators over a cells_x × cells_y
/// grid (row-major). Derived views (divergence ratio, replay count) are
/// computed at render time.
struct Heatmap {
  int width = 0;       ///< frame pixels
  int height = 0;
  int cell_px = 8;     ///< square cell edge, in pixels
  int cells_x = 0;
  int cells_y = 0;
  std::uint64_t launches = 0;  ///< kernel launches folded in
  std::uint64_t blocks = 0;    ///< block records folded in
  // Raw sums per cell (fractionally distributed over the block's pixels):
  std::vector<double> issue_cycles;
  std::vector<double> branches_executed;
  std::vector<double> branches_divergent;
  std::vector<double> mem_instructions;   ///< load + store instructions
  std::vector<double> transactions;       ///< load + store + rmw segments
  std::vector<double> dram_bytes;         ///< bytes_transferred()

  bool empty() const { return blocks == 0; }
  std::size_t cells() const {
    return static_cast<std::size_t>(cells_x) * static_cast<std::size_t>(cells_y);
  }
};

/// StatsSink adapter. Chains to an inner sink (the telemetry counter
/// registry) so installing a heatmap does not displace counter export.
class HeatmapSink final : public gpusim::StatsSink {
 public:
  explicit HeatmapSink(gpusim::StatsSink* chain = nullptr) : chain_(chain) {}

  void set_chain(gpusim::StatsSink* chain);

  /// Bind the frame geometry blocks map onto. Pipelines call this at
  /// construction; rebinding with different dimensions resets the grids
  /// (cell_px must be positive; clamped to the frame size).
  void bind_frame(int width, int height, int cell_px = 8);

  /// Drop all accumulated cells (keeps the binding).
  void reset();

  Heatmap snapshot() const;

  // --- StatsSink ----------------------------------------------------------
  void on_kernel_launch(const gpusim::KernelStats& stats) override;
  bool wants_block_stats() const override { return true; }
  void on_block_stats(const gpusim::BlockStats& block) override;

 private:
  mutable std::mutex mu_;
  gpusim::StatsSink* chain_ = nullptr;
  Heatmap map_;
};

/// Process-global install seam: pipelines consult this at construction and
/// chain the device's stats sink through it. Install before building
/// pipelines (bench_util does this under MOG_BENCH_PROFILE); never uninstall
/// while pipelines using it are alive. nullptr when no heatmap is wanted —
/// the common case, costing one load at pipeline construction only.
void set_heatmap_sink(HeatmapSink* sink);
HeatmapSink* heatmap_sink();

/// JSON round-trip ("mog-heatmap-v1").
telemetry::Json heatmap_to_json(const Heatmap& map);
Heatmap heatmap_from_json(const telemetry::Json& doc);

/// Derived per-cell views (same cells_x × cells_y layout as the raw grids).
std::vector<double> divergence_grid(const Heatmap& map);  ///< divergent/executed
std::vector<double> replay_grid(const Heatmap& map);      ///< transactions − mem insts

/// Renderers. PGM is plain-text P2, 255 = hottest cell (max-normalized);
/// CSV is one row per cell row with %.6g values.
std::string heatmap_to_pgm(const std::vector<double>& grid, int cells_x,
                           int cells_y);
std::string heatmap_to_csv(const std::vector<double>& grid, int cells_x,
                           int cells_y);

/// Terminal summary for `mogprof --heatmap`: grid shape plus the hottest
/// cells per metric.
std::string render_heatmap_summary(const Heatmap& map, int top_n = 3);

}  // namespace mog::obs
