#include "mog/obs/sampler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "mog/common/error.hpp"

namespace mog::obs {

namespace {

/// Aggregation key: thread name + '\x1f' + raw tag bytes root-first. Built
/// on the sampler thread only; decoded into FlameStack at take() time.
std::string sample_key(const ProfSlot& slot, std::uint32_t depth) {
  std::string key;
  key.reserve(ProfSlot::kNameBytes + 1 + depth);
  for (int i = 0; i < ProfSlot::kNameBytes; ++i) {
    const char c = slot.name[i].load(std::memory_order_relaxed);
    if (c == '\0') break;
    key.push_back(c);
  }
  if (key.empty()) key = "thread";
  key.push_back('\x1f');
  for (std::uint32_t d = 0; d < depth; ++d)
    key.push_back(
        static_cast<char>(slot.tags[d].load(std::memory_order_relaxed)));
  return key;
}

FlameStack decode_key(const std::string& key, std::uint64_t count) {
  FlameStack stack;
  stack.count = count;
  const std::size_t sep = key.find('\x1f');
  stack.thread = key.substr(0, sep);
  for (std::size_t i = sep + 1; i < key.size(); ++i) {
    const auto raw = static_cast<std::uint8_t>(key[i]);
    const ProfTag tag = raw < static_cast<std::uint8_t>(ProfTag::kCount)
                            ? static_cast<ProfTag>(raw)
                            : ProfTag::kCount;
    stack.frames.emplace_back(to_string(tag));
  }
  return stack;
}

}  // namespace

Sampler::~Sampler() { stop(); }

Sampler& Sampler::global() {
  static Sampler sampler;
  return sampler;
}

bool Sampler::start(int hz) {
  MOG_CHECK(hz >= 1 && hz <= 20000, "sampler hz out of range [1, 20000]");
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  // The global enable flag is the process-wide arbiter: winning this CAS is
  // what makes this instance *the* running sampler, so a second instance
  // (e.g. a test-local Sampler racing Sampler::global()) gets false here,
  // exactly like a same-instance double start.
  detail::ProfRegistry& reg = detail::g_prof_registry;
  bool expected = false;
  if (!reg.enabled.compare_exchange_strong(expected, true,
                                           std::memory_order_relaxed))
    return false;
  hz_ = hz;
  profile_ = FlameProfile{};
  profile_.hz = hz;
  stop_flag_.store(false, std::memory_order_relaxed);
  started_at_ = std::chrono::steady_clock::now();
  // Reset per-slot truncation tallies so the profile reports this window
  // only. Racy against concurrent pushes by design: a push lost to the
  // reset undercounts `truncated` by one, never corrupts a stack.
  const int high_water = reg.high_water.load(std::memory_order_acquire);
  for (int i = 0; i < high_water; ++i)
    reg.slots[i].truncated.store(0, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
  running_ = true;
  return true;
}

void Sampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    // New spans stop publishing immediately; in-flight spans still pop
    // their depth correctly (the pop does not consult the enable flag).
    detail::g_prof_registry.enabled.store(false, std::memory_order_relaxed);
    stop_flag_.store(true, std::memory_order_relaxed);
    worker = std::move(thread_);
  }
  worker.join();  // loop() folds its aggregate into profile_ on exit
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

FlameProfile Sampler::take() {
  std::lock_guard<std::mutex> lock(mu_);
  MOG_CHECK(!running_, "Sampler::take() while running; stop() first");
  return std::exchange(profile_, FlameProfile{});
}

bool Sampler::try_capture(double seconds, int hz, FlameProfile& out) {
  MOG_CHECK(seconds > 0 && seconds <= 60,
            "sampler capture window out of range (0, 60] seconds");
  if (!start(hz)) return false;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop();
  out = take();
  return true;
}

void Sampler::loop() {
  const auto period = std::chrono::nanoseconds(1'000'000'000LL / hz_);
  auto next = std::chrono::steady_clock::now();
  std::map<std::string, std::uint64_t> agg;
  std::uint64_t ticks = 0, samples = 0, idle = 0;
  detail::ProfRegistry& reg = detail::g_prof_registry;

  while (!stop_flag_.load(std::memory_order_relaxed)) {
    next += period;
    std::this_thread::sleep_until(next);
    ++ticks;
    const int high_water = reg.high_water.load(std::memory_order_acquire);
    for (int i = 0; i < high_water; ++i) {
      ProfSlot& slot = reg.slots[i];
      if (slot.state.load(std::memory_order_relaxed) != 1) continue;
      const std::uint32_t depth =
          std::min(slot.depth.load(std::memory_order_relaxed), kProfMaxDepth);
      if (depth == 0)
        ++idle;
      else
        ++samples;
      ++agg[sample_key(slot, depth)];
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  profile_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  profile_.ticks = ticks;
  profile_.samples = samples;
  profile_.idle = idle;
  const int high_water = reg.high_water.load(std::memory_order_acquire);
  for (int i = 0; i < high_water; ++i)
    profile_.truncated +=
        reg.slots[i].truncated.load(std::memory_order_relaxed);
  profile_.stacks.reserve(agg.size());
  for (const auto& [key, count] : agg)
    profile_.stacks.push_back(decode_key(key, count));
  std::sort(profile_.stacks.begin(), profile_.stacks.end(),
            [](const FlameStack& a, const FlameStack& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.frames < b.frames;
            });
}

}  // namespace mog::obs
