#include "mog/obs/heatmap.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"

namespace mog::obs {

namespace {

std::atomic<HeatmapSink*> g_heatmap_sink{nullptr};

/// The serialized raw grids, in fixed order (names are the JSON keys).
struct GridField {
  const char* name;
  std::vector<double> Heatmap::* member;
};
constexpr GridField kGrids[] = {
    {"issue_cycles", &Heatmap::issue_cycles},
    {"branches_executed", &Heatmap::branches_executed},
    {"branches_divergent", &Heatmap::branches_divergent},
    {"mem_instructions", &Heatmap::mem_instructions},
    {"transactions", &Heatmap::transactions},
    {"dram_bytes", &Heatmap::dram_bytes},
};

void resize_grids(Heatmap& map) {
  for (const GridField& g : kGrids) (map.*g.member).assign(map.cells(), 0.0);
}

}  // namespace

void HeatmapSink::set_chain(gpusim::StatsSink* chain) {
  std::lock_guard<std::mutex> lock(mu_);
  chain_ = chain;
}

void HeatmapSink::bind_frame(int width, int height, int cell_px) {
  MOG_CHECK(width > 0 && height > 0, "heatmap frame must be non-empty");
  MOG_CHECK(cell_px > 0, "heatmap cell size must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.width == width && map_.height == height &&
      map_.cell_px == std::min({cell_px, width, height}))
    return;  // same binding: keep accumulating (serve re-creates pipelines)
  map_ = Heatmap{};
  map_.width = width;
  map_.height = height;
  map_.cell_px = std::min({cell_px, width, height});
  map_.cells_x = (width + map_.cell_px - 1) / map_.cell_px;
  map_.cells_y = (height + map_.cell_px - 1) / map_.cell_px;
  resize_grids(map_);
}

void HeatmapSink::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.launches = 0;
  map_.blocks = 0;
  resize_grids(map_);
}

Heatmap HeatmapSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

void HeatmapSink::on_kernel_launch(const gpusim::KernelStats& stats) {
  gpusim::StatsSink* chain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++map_.launches;
    chain = chain_;
  }
  if (chain != nullptr) chain->on_kernel_launch(stats);
}

void HeatmapSink::on_block_stats(const gpusim::BlockStats& block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.cells() == 0 || block.threads <= 0) return;

  const auto num_pixels = static_cast<std::int64_t>(map_.width) * map_.height;
  const std::int64_t begin = std::clamp<std::int64_t>(
      block.first_thread, 0, num_pixels);
  const std::int64_t end = std::clamp<std::int64_t>(
      block.first_thread + block.threads, begin, num_pixels);
  if (end == begin) return;  // launch larger than the frame (halo threads)
  ++map_.blocks;

  const gpusim::KernelStats& d = block.delta;
  const double values[] = {
      static_cast<double>(d.issue_cycles),
      static_cast<double>(d.branches_executed),
      static_cast<double>(d.branches_divergent),
      static_cast<double>(d.load_instructions + d.store_instructions),
      static_cast<double>(d.total_transactions()),
      static_cast<double>(d.bytes_transferred()),
  };
  static_assert(std::size(kGrids) == std::size(values));

  // Distribute the block's totals over the cells its pixel range crosses,
  // weighted by pixel overlap. Walk the range one frame row at a time: a
  // row of pixels spans contiguous cells of one cell row.
  const double per_pixel = 1.0 / static_cast<double>(end - begin);
  for (std::int64_t p = begin; p < end;) {
    const std::int64_t y = p / map_.width;
    const std::int64_t x = p % map_.width;
    const std::int64_t row_end =
        std::min(end, (y + 1) * static_cast<std::int64_t>(map_.width));
    const std::int64_t cy = y / map_.cell_px;
    for (std::int64_t cp = p; cp < row_end;) {
      const std::int64_t cx = (cp % map_.width) / map_.cell_px;
      const std::int64_t cell_right = std::min(
          row_end, y * static_cast<std::int64_t>(map_.width) +
                       (cx + 1) * static_cast<std::int64_t>(map_.cell_px));
      const double weight =
          static_cast<double>(cell_right - cp) * per_pixel;
      const std::size_t cell =
          static_cast<std::size_t>(cy) * map_.cells_x +
          static_cast<std::size_t>(cx);
      for (std::size_t g = 0; g < std::size(kGrids); ++g)
        (map_.*kGrids[g].member)[cell] += values[g] * weight;
      cp = cell_right;
    }
    p = row_end;
    (void)x;
  }
}

void set_heatmap_sink(HeatmapSink* sink) {
  g_heatmap_sink.store(sink, std::memory_order_release);
}

HeatmapSink* heatmap_sink() {
  return g_heatmap_sink.load(std::memory_order_acquire);
}

telemetry::Json heatmap_to_json(const Heatmap& map) {
  using telemetry::Json;
  Json doc = Json::object();
  doc.set("schema", "mog-heatmap-v1");
  doc.set("width", map.width);
  doc.set("height", map.height);
  doc.set("cell_px", map.cell_px);
  doc.set("cells_x", map.cells_x);
  doc.set("cells_y", map.cells_y);
  doc.set("launches", map.launches);
  doc.set("blocks", map.blocks);
  Json grids = Json::object();
  for (const GridField& g : kGrids) {
    Json cells = Json::array();
    for (const double v : map.*g.member) cells.push_back(v);
    grids.set(g.name, std::move(cells));
  }
  doc.set("grids", std::move(grids));
  return doc;
}

Heatmap heatmap_from_json(const telemetry::Json& doc) {
  const telemetry::Json* schema = doc.find("schema");
  MOG_CHECK(schema != nullptr && schema->is_string() &&
                schema->as_string() == "mog-heatmap-v1",
            "not a mog-heatmap-v1 document");
  const auto num = [&](const char* key) {
    const telemetry::Json* v = doc.find(key);
    MOG_CHECK(v != nullptr && v->is_number(),
              std::string("heatmap doc missing ") + key);
    return v->as_number();
  };
  Heatmap map;
  map.width = static_cast<int>(num("width"));
  map.height = static_cast<int>(num("height"));
  map.cell_px = static_cast<int>(num("cell_px"));
  map.cells_x = static_cast<int>(num("cells_x"));
  map.cells_y = static_cast<int>(num("cells_y"));
  map.launches = static_cast<std::uint64_t>(num("launches"));
  map.blocks = static_cast<std::uint64_t>(num("blocks"));
  MOG_CHECK(map.cells_x > 0 && map.cells_y > 0, "heatmap grid is empty");
  const telemetry::Json* grids = doc.find("grids");
  MOG_CHECK(grids != nullptr && grids->is_object(),
            "heatmap doc missing grids");
  for (const GridField& g : kGrids) {
    const telemetry::Json* cells = grids->find(g.name);
    MOG_CHECK(cells != nullptr && cells->is_array() &&
                  cells->as_array().size() == map.cells(),
              strprintf("heatmap grid %s missing or wrong size", g.name));
    std::vector<double>& grid = map.*g.member;
    grid.reserve(map.cells());
    for (const telemetry::Json& v : cells->as_array())
      grid.push_back(v.as_number());
  }
  return map;
}

std::vector<double> divergence_grid(const Heatmap& map) {
  std::vector<double> out(map.cells(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i)
    if (map.branches_executed[i] > 0)
      out[i] = map.branches_divergent[i] / map.branches_executed[i];
  return out;
}

std::vector<double> replay_grid(const Heatmap& map) {
  std::vector<double> out(map.cells(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = std::max(0.0, map.transactions[i] - map.mem_instructions[i]);
  return out;
}

std::string heatmap_to_pgm(const std::vector<double>& grid, int cells_x,
                           int cells_y) {
  MOG_CHECK(grid.size() == static_cast<std::size_t>(cells_x) *
                               static_cast<std::size_t>(cells_y),
            "grid size does not match cell dimensions");
  const double max_v = grid.empty()
                           ? 0.0
                           : *std::max_element(grid.begin(), grid.end());
  std::string out = strprintf("P2\n%d %d\n255\n", cells_x, cells_y);
  for (int y = 0; y < cells_y; ++y) {
    for (int x = 0; x < cells_x; ++x) {
      const double v = grid[static_cast<std::size_t>(y) * cells_x + x];
      const int level =
          max_v <= 0 ? 0
                     : static_cast<int>(std::lround(255.0 * v / max_v));
      out += strprintf(x == 0 ? "%d" : " %d", level);
    }
    out += '\n';
  }
  return out;
}

std::string heatmap_to_csv(const std::vector<double>& grid, int cells_x,
                           int cells_y) {
  MOG_CHECK(grid.size() == static_cast<std::size_t>(cells_x) *
                               static_cast<std::size_t>(cells_y),
            "grid size does not match cell dimensions");
  std::string out;
  for (int y = 0; y < cells_y; ++y) {
    for (int x = 0; x < cells_x; ++x) {
      if (x > 0) out += ',';
      out += strprintf("%.6g", grid[static_cast<std::size_t>(y) * cells_x + x]);
    }
    out += '\n';
  }
  return out;
}

std::string render_heatmap_summary(const Heatmap& map, int top_n) {
  std::string out = strprintf(
      "heatmap: %dx%d px, %dx%d cells (%d px/cell), %llu launches, "
      "%llu blocks\n",
      map.width, map.height, map.cells_x, map.cells_y, map.cell_px,
      static_cast<unsigned long long>(map.launches),
      static_cast<unsigned long long>(map.blocks));
  if (map.empty()) {
    out += "  (no block records; heatmap sink not bound during a launch?)\n";
    return out;
  }

  struct View {
    const char* name;
    std::vector<double> grid;
  };
  const View views[] = {
      {"cycles", map.issue_cycles},
      {"divergence", divergence_grid(map)},
      {"replay", replay_grid(map)},
      {"dram_bytes", map.dram_bytes},
  };
  for (const View& view : views) {
    std::vector<std::size_t> order(view.grid.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (view.grid[a] != view.grid[b]) return view.grid[a] > view.grid[b];
      return a < b;
    });
    out += strprintf("  %-11s hottest:", view.name);
    const int n = std::min<int>(top_n, static_cast<int>(order.size()));
    for (int i = 0; i < n; ++i) {
      const std::size_t cell = order[i];
      out += strprintf(" (%d,%d)=%.4g",
                       static_cast<int>(cell % map.cells_x),
                       static_cast<int>(cell / map.cells_x), view.grid[cell]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mog::obs
