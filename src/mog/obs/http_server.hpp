// Minimal embedded HTTP/1.1 server for the observability endpoints.
//
// POSIX sockets only — no third-party dependency. One listener bound to
// 127.0.0.1 (observability is host-local; put a real proxy in front for
// anything else), one blocking accept loop on its own thread, one request
// per connection (Connection: close). That is deliberately primitive: a
// /metrics scrape every few seconds and the occasional /healthz probe do
// not justify a connection pool.
//
// Handlers run on the server thread and may block briefly (they typically
// take the owning subsystem's mutex to snapshot state). Registration is
// done before start(); the server never mutates handler state.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace mog::obs {

/// RFC 3986 percent-decoding ('+' also decodes to space, as browsers send
/// it in query strings). Returns false on a truncated or non-hex escape.
bool percent_decode(std::string_view in, std::string& out);

/// Parse "k1=v1&k2=v2" into decoded pairs. Strict: every pair needs a
/// non-empty key, an '=', and valid escapes; empty segments ("a=1&&b=2")
/// are malformed. The empty string is a valid empty query. Returns false
/// (with `out` unspecified) on malformed input — the server maps that to
/// 400 rather than silently dropping parameters.
bool parse_query_string(std::string_view in,
                        std::vector<std::pair<std::string, std::string>>& out);

struct HttpRequest {
  std::string method;
  std::string path;  ///< without query string
  /// Percent-decoded query parameters in URL order. A syntactically invalid
  /// query string never reaches a handler — the server answers 400 first.
  std::vector<std::pair<std::string, std::string>> query;

  /// First value for `key`; nullptr when absent.
  const std::string* param(std::string_view key) const {
    for (const auto& [k, v] : query)
      if (k == key) return &v;
    return nullptr;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Content type Prometheus scrapers expect from /metrics.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path handler (no patterns). Must precede start().
  void handle(std::string path, Handler handler);

  /// Bound how long one request may take to arrive (SO_RCVTIMEO on the
  /// client socket). A connection that dribbles or stalls past the deadline
  /// gets "408 Request Timeout" instead of parking the server thread
  /// forever. Must precede start(); <= 0 disables the bound.
  void set_read_timeout(double seconds);

  /// Bound the request head size. Anything larger gets "431 Request Header
  /// Fields Too Large" without buffering the rest. Must precede start().
  void set_max_request_bytes(std::size_t bytes);

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port — tests) and start
  /// the accept loop. Throws mog::Error when the bind fails.
  void start(int port);

  /// Stop accepting, join the server thread. Idempotent.
  void stop();

  bool running() const { return running_; }

  /// The actually bound port (resolves port 0); -1 before start().
  int port() const { return port_; }

 private:
  void serve_loop();
  HttpResponse dispatch(const HttpRequest& request) const;

  std::vector<std::pair<std::string, Handler>> handlers_;
  double read_timeout_seconds_ = 5.0;
  std::size_t max_request_bytes_ = 16384;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace mog::obs
