#include "mog/obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"

namespace mog::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool percent_decode(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out.push_back(' ');
      continue;
    }
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    const auto hex = [](char h) -> int {
      if (h >= '0' && h <= '9') return h - '0';
      if (h >= 'a' && h <= 'f') return h - 'a' + 10;
      if (h >= 'A' && h <= 'F') return h - 'A' + 10;
      return -1;
    };
    if (i + 2 >= in.size()) return false;  // truncated escape
    const int hi = hex(in[i + 1]), lo = hex(in[i + 2]);
    if (hi < 0 || lo < 0) return false;  // non-hex escape
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

bool parse_query_string(
    std::string_view in,
    std::vector<std::pair<std::string, std::string>>& out) {
  out.clear();
  if (in.empty()) return true;
  std::size_t start = 0;
  while (start <= in.size()) {
    const std::size_t amp = in.find('&', start);
    const std::size_t end = amp == std::string_view::npos ? in.size() : amp;
    const std::string_view pair = in.substr(start, end - start);
    const std::size_t eq = pair.find('=');
    if (pair.empty() || eq == std::string_view::npos || eq == 0) return false;
    std::string key, value;
    if (!percent_decode(pair.substr(0, eq), key) ||
        !percent_decode(pair.substr(eq + 1), value))
      return false;
    out.emplace_back(std::move(key), std::move(value));
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return true;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  MOG_CHECK(!running_, "register handlers before start()");
  MOG_CHECK(handler != nullptr, "null HTTP handler");
  handlers_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::set_read_timeout(double seconds) {
  MOG_CHECK(!running_, "set_read_timeout before start()");
  read_timeout_seconds_ = seconds;
}

void HttpServer::set_max_request_bytes(std::size_t bytes) {
  MOG_CHECK(!running_, "set_max_request_bytes before start()");
  MOG_CHECK(bytes >= 64, "request bound too small to hold a request line");
  max_request_bytes_ = bytes;
}

void HttpServer::start(int port) {
  MOG_CHECK(!running_, "HTTP server already running");
  MOG_CHECK(port >= 0 && port <= 65535, "HTTP port out of range");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MOG_CHECK(listen_fd_ >= 0, "socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error{strprintf("cannot bind 127.0.0.1:%d: %s", port,
                          std::strerror(err))};
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  // Unblock accept(): shutdown on a listening socket returns it with an
  // error on Linux. The close happens after the join so the fd cannot be
  // reused by another thread while accept still references it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void HttpServer::serve_loop() {
  while (running_) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_) break;
      if (errno == EINTR) continue;
      break;  // listener broken: stop serving rather than spin
    }

    // Bound how long this request may take to arrive: the single server
    // thread must not be parked forever by a peer that connects and stalls.
    if (read_timeout_seconds_ > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(read_timeout_seconds_);
      tv.tv_usec = static_cast<suseconds_t>(
          (read_timeout_seconds_ - static_cast<double>(tv.tv_sec)) * 1e6);
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    // Read until the end of the request headers (the endpoints are all GET,
    // so no body), bounded in both bytes and time.
    std::string raw;
    bool timed_out = false;
    char buf[2048];
    while (raw.find("\r\n\r\n") == std::string::npos &&
           raw.size() < max_request_bytes_) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        timed_out = true;
        break;
      }
      if (n <= 0) break;  // peer closed or hard error: whatever arrived is it
      raw.append(buf, static_cast<std::size_t>(n));
    }
    if (raw.empty() && !timed_out) {
      // Connect-and-close probe (port scan, health check): nothing to say.
      ::close(client);
      continue;
    }

    HttpResponse response;
    const std::size_t line_end = raw.find("\r\n");
    std::size_t sp1 = std::string::npos, sp2 = std::string::npos;
    if (line_end != std::string::npos) {
      sp1 = raw.find(' ');
      sp2 = sp1 == std::string::npos ? std::string::npos
                                     : raw.find(' ', sp1 + 1);
    }
    if (raw.size() >= max_request_bytes_) {
      response.status = 431;
      response.body = "request too large\n";
    } else if (timed_out) {
      response.status = 408;
      response.body = "request timed out\n";
    } else if (sp2 == std::string::npos || sp2 > line_end) {
      response.status = 400;
      response.body = "malformed request\n";
    } else {
      HttpRequest request;
      request.method = raw.substr(0, sp1);
      request.path = raw.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t query = request.path.find('?');
      bool query_ok = true;
      if (query != std::string::npos) {
        query_ok = parse_query_string(
            std::string_view{request.path}.substr(query + 1), request.query);
        request.path.resize(query);
      }
      if (!query_ok) {
        response.status = 400;
        response.body = "malformed query string\n";
      } else {
        response = dispatch(request);
      }
    }

    std::string out = strprintf(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        response.status, status_text(response.status),
        response.content_type.c_str(), response.body.size());
    out += response.body;
    write_all(client, out);
    ::shutdown(client, SHUT_WR);
    ::close(client);
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "HEAD")
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  for (const auto& [path, handler] : handlers_)
    if (path == request.path) return handler(request);
  return {404, "text/plain; charset=utf-8",
          "not found; try /metrics, /healthz, /statusz\n"};
}

}  // namespace mog::obs
