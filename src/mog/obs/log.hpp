// Structured, leveled JSON-lines logging for the live observability plane.
//
// Design mirrors the telemetry sinks: library code logs unconditionally
// through cheap scoped handles, but nothing is written until a sink is
// attached to the (process-wide) default logger — a sink-less log call
// returns after one cheap check. Each record renders as one JSON object per line
// ({"ts_us":..., "level":"warn", "component":"serve", "msg":..., ...fields}),
// so `grep component=serve` workflows become `jq 'select(.component=="serve")'`
// without losing plain-text readability.
//
// Repeat suppression is deterministic (count-based, not wall-clock-based, so
// tests can assert it): per (component, message) key the first
// `RateLimitPolicy::max_burst` records pass, after which only every
// `every`-th passes, carrying the number suppressed since the last emission
// in the record's `suppressed` field. Errors are never suppressed.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mog/telemetry/json.hpp"

namespace mog::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogLevel level);

/// One structured log record, as handed to every sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::vector<std::pair<std::string, telemetry::Json>> fields;
  std::int64_t ts_us = 0;         ///< microseconds since logger construction
  std::uint64_t suppressed = 0;   ///< repeats dropped since the last emission
};

/// Render one record as a single JSON line (no trailing newline).
std::string format_jsonl(const LogRecord& record);

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// JSON lines to stderr (the examples' default).
class StderrSink : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// JSON lines appended to a file; opened on construction, flushed per line.
class FileSink : public LogSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(const LogRecord& record) override;

 private:
  std::mutex mu_;
  std::FILE* file_;
};

/// Last-N records in memory (tests, /statusz tails).
class RingBufferSink : public LogSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 256) : capacity_(capacity) {}
  void write(const LogRecord& record) override;

  std::vector<LogRecord> snapshot() const;
  std::size_t size() const;
  std::uint64_t total_written() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<LogRecord> records_;
  std::uint64_t total_ = 0;
};

struct RateLimitPolicy {
  std::uint64_t max_burst = 8;  ///< identical records that always pass
  std::uint64_t every = 64;     ///< afterwards pass 1 in `every`
};

class Logger {
 public:
  explicit Logger(LogLevel threshold = LogLevel::kInfo)
      : threshold_(threshold) {}

  /// Sinks are unowned (the installer keeps them alive, like the telemetry
  /// recorder); fan-out preserves attachment order.
  void add_sink(LogSink* sink);
  void remove_sink(LogSink* sink);
  void clear_sinks();
  bool has_sinks() const;

  void set_threshold(LogLevel threshold);
  LogLevel threshold() const;
  void set_rate_limit(const RateLimitPolicy& policy);

  void log(LogLevel level, std::string_view component,
           std::string_view message,
           std::vector<std::pair<std::string, telemetry::Json>> fields = {});

  std::uint64_t records_emitted() const;
  std::uint64_t records_suppressed() const;

 private:
  struct RepeatState {
    std::uint64_t seen = 0;
    std::uint64_t suppressed_since_emit = 0;
  };

  mutable std::mutex mu_;
  std::vector<LogSink*> sinks_;
  LogLevel threshold_;
  RateLimitPolicy rate_limit_;
  std::vector<std::pair<std::string, RepeatState>> repeats_;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_total_ = 0;
  std::int64_t epoch_us_ = -1;  ///< stamped lazily on the first record
};

/// The process-wide logger every subsystem writes to. Sink-less (silent)
/// until an example, test, or embedding application attaches sinks.
Logger& default_logger();

/// Cheap per-component handle: `ScopedLogger log{"serve"}; log.warn(...)`.
class ScopedLogger {
 public:
  explicit ScopedLogger(std::string component, Logger* logger = nullptr)
      : component_(std::move(component)), logger_(logger) {}

  void debug(std::string_view message,
             std::vector<std::pair<std::string, telemetry::Json>> fields = {})
      const {
    log(LogLevel::kDebug, message, std::move(fields));
  }
  void info(std::string_view message,
            std::vector<std::pair<std::string, telemetry::Json>> fields = {})
      const {
    log(LogLevel::kInfo, message, std::move(fields));
  }
  void warn(std::string_view message,
            std::vector<std::pair<std::string, telemetry::Json>> fields = {})
      const {
    log(LogLevel::kWarn, message, std::move(fields));
  }
  void error(std::string_view message,
             std::vector<std::pair<std::string, telemetry::Json>> fields = {})
      const {
    log(LogLevel::kError, message, std::move(fields));
  }

  const std::string& component() const { return component_; }

 private:
  void log(LogLevel level, std::string_view message,
           std::vector<std::pair<std::string, telemetry::Json>> fields) const {
    Logger& target = logger_ != nullptr ? *logger_ : default_logger();
    target.log(level, component_, message, std::move(fields));
  }

  std::string component_;
  Logger* logger_;
};

}  // namespace mog::obs
