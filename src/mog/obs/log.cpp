#include "mog/obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "mog/common/error.hpp"

namespace mog::obs {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::string format_jsonl(const LogRecord& record) {
  telemetry::Json line = telemetry::Json::object();
  line.set("ts_us", static_cast<double>(record.ts_us));
  line.set("level", to_string(record.level));
  line.set("component", record.component);
  line.set("msg", record.message);
  for (const auto& [key, value] : record.fields) line.set(key, value);
  if (record.suppressed > 0)
    line.set("suppressed", static_cast<double>(record.suppressed));
  return line.dump();
}

void StderrSink::write(const LogRecord& record) {
  std::fprintf(stderr, "%s\n", format_jsonl(record).c_str());
}

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {
  MOG_CHECK(file_ != nullptr, "cannot open log file: " + path);
}

FileSink::~FileSink() { std::fclose(file_); }

void FileSink::write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(file_, "%s\n", format_jsonl(record).c_str());
  std::fflush(file_);
}

void RingBufferSink::write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (records_.size() >= capacity_) records_.pop_front();
  records_.push_back(record);
}

std::vector<LogRecord> RingBufferSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

std::size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t RingBufferSink::total_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void Logger::add_sink(LogSink* sink) {
  MOG_CHECK(sink != nullptr, "cannot attach a null log sink");
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void Logger::remove_sink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Logger::clear_sinks() {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.clear();
}

bool Logger::has_sinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !sinks_.empty();
}

void Logger::set_threshold(LogLevel threshold) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = threshold;
}

LogLevel Logger::threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_;
}

void Logger::set_rate_limit(const RateLimitPolicy& policy) {
  MOG_CHECK(policy.max_burst >= 1, "rate limit needs max_burst >= 1");
  MOG_CHECK(policy.every >= 1, "rate limit needs every >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  rate_limit_ = policy;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::vector<std::pair<std::string, telemetry::Json>> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sinks_.empty() || level < threshold_) return;

  if (epoch_us_ < 0) epoch_us_ = steady_now_us();

  std::uint64_t carried = 0;
  if (level < LogLevel::kError) {
    // Deterministic repeat suppression keyed on (component, message). The
    // key ignores fields on purpose: a retry loop varies its attempt number
    // but is still the same repeating event.
    std::string key;
    key.reserve(component.size() + 1 + message.size());
    key.append(component).push_back('\0');
    key.append(message);
    RepeatState* state = nullptr;
    for (auto& [k, s] : repeats_)
      if (k == key) {
        state = &s;
        break;
      }
    if (state == nullptr) state = &repeats_.emplace_back(key, RepeatState{}).second;
    ++state->seen;
    if (state->seen > rate_limit_.max_burst &&
        (state->seen - rate_limit_.max_burst) % rate_limit_.every != 0) {
      ++state->suppressed_since_emit;
      ++suppressed_total_;
      return;
    }
    carried = state->suppressed_since_emit;
    state->suppressed_since_emit = 0;
  }

  LogRecord record;
  record.level = level;
  record.component.assign(component);
  record.message.assign(message);
  record.fields = std::move(fields);
  record.ts_us = steady_now_us() - epoch_us_;
  record.suppressed = carried;
  ++emitted_;
  for (LogSink* sink : sinks_) sink->write(record);
}

std::uint64_t Logger::records_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t Logger::records_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_total_;
}

Logger& default_logger() {
  static Logger logger{LogLevel::kInfo};
  return logger;
}

}  // namespace mog::obs
