// Precision / component-count trade-off study (the paper's §V): for each
// (precision, K) combination, report modeled performance AND measured
// output quality against the double-precision CPU reference — the
// quality-for-speed decision the paper's conclusion says embedded
// deployments will have to make.
//
//   $ ./examples/precision_tradeoff [width] [height]
#include <cstdio>
#include <cstdlib>

#include "mog/pipeline/experiment.hpp"

int main(int argc, char** argv) {
  mog::ExperimentConfig base;
  base.width = argc > 1 ? std::atoi(argv[1]) : 384;
  base.height = argc > 2 ? std::atoi(argv[2]) : 216;
  base.frames = 24;
  base.warmup_frames = 8;
  base.level = mog::kernels::OptLevel::kF;
  base.measure_quality = true;

  std::printf(
      "level-F GPU pipeline, %dx%d, %d frames; quality vs CPU double "
      "reference\n\n",
      base.width, base.height, base.frames);
  std::printf("%-18s %9s %12s %10s %10s %10s\n", "configuration", "speedup",
              "kernel_ms", "occup%", "fg_msssim", "bg_msssim");

  for (const int k : {3, 5}) {
    for (const mog::Precision prec :
         {mog::Precision::kDouble, mog::Precision::kFloat}) {
      mog::ExperimentConfig cfg = base;
      cfg.params.num_components = k;
      cfg.precision = prec;
      const mog::ExperimentResult r = run_gpu_experiment(cfg);
      const double ratio = (1920.0 * 1080.0) /
                           (static_cast<double>(cfg.width) * cfg.height);
      char name[40];
      std::snprintf(name, sizeof name, "K=%d %s", k,
                    prec == mog::Precision::kDouble ? "double" : "float");
      std::printf("%-18s %8.1fx %12.2f %10.1f %10.4f %10.4f\n", name,
                  r.speedup, 1e3 * r.kernel_timing.total_seconds * ratio,
                  100.0 * r.occupancy.achieved, r.msssim_foreground,
                  r.msssim_background);
    }
  }

  std::printf(
      "\nthe paper's take (§V-C): the float pipeline loses ~5%% MS-SSIM "
      "against the double ground truth but runs fastest — 'the single "
      "precision implementation is clearly preferred'. More components "
      "(K=5) buy robustness on multi-modal scenes at a linear CPU cost and "
      "a superlinear GPU cost (registers + divergence).\n");
  return 0;
}
