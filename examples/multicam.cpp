// Multi-camera fleet demo: N synthetic cameras sharded across D simulated
// GPUs through cluster::DeviceFleet. Each camera gets a classic test-scene
// preset (highway / lobby / waving trees, cycled), its own bounded queue, and
// its own resilient pipeline; the scheduler places streams least-loaded-first
// and each device's background worker interleaves uploads, kernels, and
// downloads on that device's copy engine.
//
//   $ ./examples/multicam [--devices N] [--streams N] [--frames N]
//                         [--depth N] [--drop newest|oldest] [--tiled G]
//                         [--fail-device IDX] [--fail-at-frame T]
//                         [--obs-port P] [--hold-seconds S]
//                         [--y4m FILE | --mjpeg FILE]
//
// Cameras submit frames at a 30 fps arrival cadence. With a shallow queue
// (--depth 2) and many streams you can watch the drop counters engage; with
// --tiled G each stream batches G frames per kernel launch (§IV-D).
//
// --y4m FILE / --mjpeg FILE replace the synthetic cameras with the encoded
// ingestion front end: every stream gets its own ingest::DecodeWorker
// reading FILE (Y4M container or concatenated baseline-JPEG parts), decoding
// off the pump thread, and submitting into the fleet with a pre-minted trace
// ticket — so a --trace timeline shows the decode span as the first hop of
// each frame's flow chain. Frame dimensions come from the file header;
// --frames caps the frames pulled per stream.
//
// --fail-device IDX declares device IDX lost mid-run (at --fail-at-frame T,
// default half the frame budget): its streams checkpoint their MoG models,
// fail over to the surviving devices, and keep serving — watch the
// mog_fleet_migrations_total counters move on /metrics.
//
// --obs-port P exposes the live observability plane (GET /metrics, /healthz,
// /statusz, /profilez) on 127.0.0.1:P for the fleet's lifetime (P=0 picks an
// ephemeral port, printed at startup) and mirrors structured logs to stderr
// as JSON lines. --hold-seconds S keeps the process (and thus the endpoints)
// alive S seconds after the run so a scraper can collect the final counters
// or grab a sampling profile (/profilez?seconds=1&hz=997).
//
// Masks, mask counts, and the modeled makespan are deterministic, but the
// latency percentiles vary run to run: which scheduler round ingests a
// frame depends on how live submissions interleave with the background
// worker — exactly as in a real server. For bit-reproducible numbers use
// the synchronous drain() path (tests/test_cluster.cpp, bench_serve).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mog/cluster/device_fleet.hpp"
#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"
#include "mog/ingest/decode_worker.hpp"
#include "mog/ingest/mjpeg.hpp"
#include "mog/ingest/y4m.hpp"
#include "mog/obs/log.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/scene.hpp"

namespace {

[[noreturn]] void usage(const std::string& why) {
  std::fprintf(stderr, "multicam: %s\n", why.c_str());
  std::fprintf(stderr,
               "usage: multicam [--devices N] [--streams N] [--frames N]\n"
               "                [--depth N] [--drop newest|oldest]\n"
               "                [--tiled G] [--fail-device IDX]\n"
               "                [--fail-at-frame T] [--obs-port P]\n"
               "                [--hold-seconds S] [--trace FILE]\n"
               "                [--y4m FILE | --mjpeg FILE]\n");
  std::exit(2);
}

// Open a fresh FrameReader over the ingest file (one per stream: each
// DecodeWorker owns its own cursor into the same bytes).
std::unique_ptr<mog::ingest::FrameReader> open_reader(
    const std::string& y4m_path, const std::string& mjpeg_path) {
  if (!y4m_path.empty())
    return std::make_unique<mog::ingest::Y4mReader>(
        std::make_unique<mog::ingest::FileSource>(y4m_path));
  return std::make_unique<mog::ingest::MjpegReader>(
      std::make_unique<mog::ingest::FileSource>(mjpeg_path));
}

// Frame geometry and cadence of the encoded stream: Y4M carries both in its
// header; MJPEG parts carry geometry in their SOF0 (cadence is modeled).
struct ProbedStream {
  int width = 0;
  int height = 0;
  double fps = 30.0;
};

ProbedStream probe_ingest(const std::string& y4m_path,
                          const std::string& mjpeg_path) {
  ProbedStream p;
  if (!y4m_path.empty()) {
    const mog::ingest::Y4mReader reader{
        std::make_unique<mog::ingest::FileSource>(y4m_path)};
    p.width = reader.header().width;
    p.height = reader.header().height;
    p.fps = reader.header().fps();
  } else {
    mog::ingest::MjpegReader reader{
        std::make_unique<mog::ingest::FileSource>(mjpeg_path)};
    mog::FrameU8 first;
    if (!reader.next(first))
      throw mog::ingest::IngestError{mog::ingest::IngestErrorKind::kTruncated,
                                     "MJPEG file holds no frames"};
    p.width = first.width();
    p.height = first.height();
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) try {
  int devices = 2;
  int streams = 4;
  int frames = 48;
  int depth = 8;
  int tiled_group = 0;     // 0 = per-frame direct kernels
  int fail_device = -1;    // -1 = no injected device loss
  int fail_at_frame = -1;  // -1 = half the frame budget
  int obs_port = -1;       // -1 = observability endpoints off
  int hold_seconds = 0;    // keep the endpoints up after the run
  std::string y4m_path;    // encoded ingestion instead of synthetic scenes
  std::string mjpeg_path;
  std::string trace_path;  // Chrome trace dump (decode spans + flow chains)
  mog::serve::DropPolicy drop = mog::serve::DropPolicy::kDropNewest;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage(std::string{what} + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--devices")
        devices = mog::parse_int(need("--devices"), 1, 16, "--devices");
      else if (arg == "--streams")
        streams = mog::parse_int(need("--streams"), 1, 16, "--streams");
      else if (arg == "--frames")
        frames = mog::parse_int(need("--frames"), 1, 1 << 20, "--frames");
      else if (arg == "--depth")
        depth = mog::parse_int(need("--depth"), 1, 1 << 16, "--depth");
      else if (arg == "--tiled")
        tiled_group = mog::parse_int(need("--tiled"), 1, 64, "--tiled");
      else if (arg == "--fail-device")
        fail_device =
            mog::parse_int(need("--fail-device"), 0, 15, "--fail-device");
      else if (arg == "--fail-at-frame")
        fail_at_frame = mog::parse_int(need("--fail-at-frame"), 0, 1 << 20,
                                       "--fail-at-frame");
      else if (arg == "--obs-port")
        obs_port = mog::parse_int(need("--obs-port"), 0, 65535, "--obs-port");
      else if (arg == "--hold-seconds")
        hold_seconds =
            mog::parse_int(need("--hold-seconds"), 0, 3600, "--hold-seconds");
      else if (arg == "--y4m")
        y4m_path = need("--y4m");
      else if (arg == "--mjpeg")
        mjpeg_path = need("--mjpeg");
      else if (arg == "--trace")
        trace_path = need("--trace");
      else if (arg == "--drop") {
        const std::string v = need("--drop");
        if (v == "newest")
          drop = mog::serve::DropPolicy::kDropNewest;
        else if (v == "oldest")
          drop = mog::serve::DropPolicy::kDropOldest;
        else
          usage("--drop: invalid value \"" + v + "\" (newest|oldest)");
      } else {
        usage("unknown flag " + arg);
      }
    } catch (const mog::Error& e) {
      usage(e.what());
    }
  }
  if (fail_device >= devices)
    usage("--fail-device must name one of the --devices");
  if (fail_device >= 0 && devices < 2)
    usage("--fail-device needs at least 2 devices to fail over to");
  if (fail_at_frame < 0) fail_at_frame = frames / 2;
  if (!y4m_path.empty() && !mjpeg_path.empty())
    usage("--y4m and --mjpeg are mutually exclusive");
  const bool ingest_mode = !y4m_path.empty() || !mjpeg_path.empty();

  mog::telemetry::TraceRecorder trace;
  if (!trace_path.empty()) mog::telemetry::set_tracer(&trace);

  // With the observability plane on, mirror the fleet's structured logs to
  // stderr; the sink is unowned, so it must outlive the fleet below.
  mog::obs::StderrSink log_sink;
  if (obs_port >= 0) mog::obs::default_logger().add_sink(&log_sink);

  mog::cluster::FleetConfig cfg;
  cfg.devices = static_cast<std::size_t>(devices);
  cfg.serve.max_streams = streams;  // per device: headroom to absorb failover
  cfg.serve.queue_depth = static_cast<std::size_t>(depth);
  cfg.serve.drop_policy = drop;
  cfg.serve.collect_masks = false;
  cfg.obs_port = obs_port;
  mog::cluster::DeviceFleet<float> fleet{cfg};
  if (obs_port >= 0)
    std::printf("observability: http://127.0.0.1:%d/metrics (also /healthz, "
                "/statusz, /profilez)\n",
                fleet.obs_port());

  const mog::SceneConfig presets[] = {
      mog::SceneConfig::highway(192, 108),
      mog::SceneConfig::lobby(192, 108),
      mog::SceneConfig::waving_trees(192, 108),
  };

  ProbedStream probed;
  if (ingest_mode) {
    probed = probe_ingest(y4m_path, mjpeg_path);
    std::printf("ingest: %s %dx%d @ %.1f fps x%d streams\n",
                !y4m_path.empty() ? y4m_path.c_str() : mjpeg_path.c_str(),
                probed.width, probed.height, probed.fps, streams);
  }

  std::vector<mog::SyntheticScene> scenes;
  std::vector<int> ids;
  for (int s = 0; s < streams; ++s) {
    mog::SceneConfig sc = presets[static_cast<std::size_t>(s) % 3];
    sc.seed += static_cast<std::uint64_t>(s);
    if (!ingest_mode) scenes.emplace_back(sc);

    mog::cluster::DeviceFleet<float>::GpuConfig gpu;
    gpu.width = ingest_mode ? probed.width : sc.width;
    gpu.height = ingest_mode ? probed.height : sc.height;
    if (tiled_group > 0) {
      gpu.tiled = true;
      gpu.tiled_config.frame_group = tiled_group;
    }
    ids.push_back(fleet.open_stream(gpu, nullptr, "cam" + std::to_string(s)));
  }

  fleet.start();
  if (ingest_mode) {
    // Encoded ingestion: one DecodeWorker per stream, each with its own
    // cursor into the file. Decode happens on the worker threads — never the
    // pump thread — and every frame enters the fleet with the pre-minted
    // ticket whose flow chain began at the decode span. The --fail-device
    // injection still applies: it is driven off stream 0's progress.
    std::vector<std::unique_ptr<mog::ingest::DecodeWorker>> workers;
    for (int s = 0; s < streams; ++s) {
      const int id = ids[static_cast<std::size_t>(s)];
      const double stagger = s * 1e-4;
      mog::ingest::DecodeWorkerConfig wc;
      wc.fps = probed.fps;
      wc.max_frames = static_cast<std::uint64_t>(frames);
      wc.stream_id = id;
      workers.push_back(std::make_unique<mog::ingest::DecodeWorker>(
          open_reader(y4m_path, mjpeg_path),
          [&fleet, id, stagger](mog::FrameU8 frame, double arrival,
                                std::uint64_t ticket) {
            return fleet.submit(id, std::move(frame), arrival + stagger,
                                ticket);
          },
          wc));
    }
    std::unique_ptr<std::thread> failer;
    if (fail_device >= 0)
      failer = std::make_unique<std::thread>([&] {
        // Fail the device roughly when the cameras reach --fail-at-frame.
        std::this_thread::sleep_for(std::chrono::duration<double>(
            0.02 * fail_at_frame));
        std::printf("failing device %d: streams migrate live\n", fail_device);
        fleet.fail_device(fail_device);
      });
    for (auto& w : workers) w->start();
    for (auto& w : workers) w->join();
    if (failer) failer->join();
    mog::ingest::DecodeStats total;
    for (auto& w : workers) {
      if (w->failed())
        std::fprintf(stderr, "multicam: ingest error: %s\n",
                     w->error().c_str());
      const mog::ingest::DecodeStats st = w->stats();
      total.frames_decoded += st.frames_decoded;
      total.frames_rejected += st.frames_rejected;
      total.bytes_consumed += st.bytes_consumed;
      total.decode_seconds += st.decode_seconds;
    }
    std::printf(
        "ingest: decoded %llu frames (%llu rejected at ingress) from %llu "
        "compressed bytes in %.3f s decode time (%.1f fps/worker)\n",
        static_cast<unsigned long long>(total.frames_decoded),
        static_cast<unsigned long long>(total.frames_rejected),
        static_cast<unsigned long long>(total.bytes_consumed),
        total.decode_seconds,
        total.decode_seconds > 0
            ? static_cast<double>(total.frames_decoded) / total.decode_seconds
            : 0.0);
  } else {
    // 30 fps cameras: camera s delivers frame t at t/30 s (staggered a
    // little so arrivals don't tie). Each device's background worker drains
    // its queues as the modeled hardware allows; a shallow --depth makes the
    // drop policy visible.
    for (int t = 0; t < frames; ++t) {
      if (fail_device >= 0 && t == fail_at_frame) {
        std::printf("failing device %d at frame %d: streams migrate live\n",
                    fail_device, t);
        fleet.fail_device(fail_device);
      }
      for (int s = 0; s < streams; ++s)
        fleet.submit(ids[static_cast<std::size_t>(s)],
                     scenes[static_cast<std::size_t>(s)].frame(t),
                     t / 30.0 + s * 1e-4);
    }
  }
  fleet.stop();
  fleet.drain();

  std::printf("%s\n", fleet.summary().c_str());
  const mog::telemetry::Rollup lat = fleet.aggregate_latency_rollup();
  std::printf(
      "aggregate: %llu masks in %.3f s modeled  (%.1f fps, p99 latency %.2f "
      "ms, %llu dropped)\n",
      static_cast<unsigned long long>(fleet.masks_delivered()),
      fleet.makespan_seconds(),
      static_cast<double>(fleet.masks_delivered()) / fleet.makespan_seconds(),
      1e3 * lat.p99,
      static_cast<unsigned long long>(fleet.frames_dropped()));
  if (fail_device >= 0)
    std::printf("failover: %s\n",
                fleet.migration_stats().summary().c_str());
  if (hold_seconds > 0) {
    std::printf("holding %d s for scrapers...\n", hold_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(hold_seconds));
  }
  if (!trace_path.empty()) {
    mog::telemetry::set_tracer(nullptr);
    trace.write(trace_path);
    std::printf("trace: %zu events -> %s (chrome://tracing)\n", trace.size(),
                trace_path.c_str());
  }
  if (obs_port >= 0) mog::obs::default_logger().remove_sink(&log_sink);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "multicam: %s\n", e.what());
  return 1;
}
