// mogcli — file-based background subtraction.
//
// Processes a sequence of binary PGM frames (printf-style pattern, e.g.
// frames/%04d.pgm) and writes foreground masks; the path real footage takes
// through the library. Supports every backend and optimization level, the
// foreground-validation post-processing pass, and background-model
// persistence for warm restarts.
//
// Usage:
//   mogcli --in frames/%04d.pgm --out masks/%04d.pgm [options]
//
// Options:
//   --start N --count N      frame index range (default 0, until missing)
//   --backend gpu|serial|simd|parallel      (default gpu)
//   --level A..F             GPU optimization level (default F)
//   --tiled G                tiled variant with frame group G
//   --float                  single precision
//   --components K           Gaussian components (default 3)
//   --validate               apply foreground validation (despeckle etc.)
//   --save-model PATH        persist the background model on exit
//   --load-model PATH        warm-start from a saved model (serial backend)
//   --background PATH        write the final background estimate PGM
//   --demo DIR               no input needed: synthesize a demo sequence
//                            into DIR first, then process it
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "mog/common/strutil.hpp"
#include "mog/core/background_subtractor.hpp"
#include "mog/cpu/model_io.hpp"
#include "mog/cpu/serial_mog.hpp"
#include "mog/postproc/validation.hpp"
#include "mog/video/pnm_io.hpp"
#include "mog/video/scene.hpp"

namespace {

struct Options {
  std::string in_pattern, out_pattern;
  int start = 0;
  int count = -1;  // -1: until a frame is missing
  std::string backend = "gpu";
  char level = 'F';
  int tiled_group = 0;
  bool use_float = false;
  int components = 3;
  bool validate = false;
  std::string save_model_path, load_model_path, background_path, demo_dir;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: mogcli --in PATTERN --out PATTERN [--start N] "
               "[--count N]\n"
               "              [--backend gpu|serial|simd|parallel] "
               "[--level A..F] [--tiled G]\n"
               "              [--float] [--components K] [--validate]\n"
               "              [--save-model P] [--load-model P] "
               "[--background P] [--demo DIR]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  // Checked parsing: std::atoi would silently read "banana" or "12x" as a
  // number; parse_int rejects them with the offending flag named.
  auto num = [&](int& i, const char* what, int lo, int hi) -> int {
    try {
      return mog::parse_int(need(i), lo, hi, what);
    } catch (const mog::Error& e) {
      usage(e.what());
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--in") o.in_pattern = need(i);
    else if (a == "--out") o.out_pattern = need(i);
    else if (a == "--start") o.start = num(i, "--start", 0, 1 << 30);
    else if (a == "--count") o.count = num(i, "--count", 0, 1 << 30);
    else if (a == "--backend") o.backend = need(i);
    else if (a == "--level") o.level = need(i)[0];
    else if (a == "--tiled") o.tiled_group = num(i, "--tiled", 1, 64);
    else if (a == "--float") o.use_float = true;
    else if (a == "--components") o.components = num(i, "--components", 1, 8);
    else if (a == "--validate") o.validate = true;
    else if (a == "--save-model") o.save_model_path = need(i);
    else if (a == "--load-model") o.load_model_path = need(i);
    else if (a == "--background") o.background_path = need(i);
    else if (a == "--demo") o.demo_dir = need(i);
    else usage(("unknown option: " + a).c_str());
  }
  if (!o.demo_dir.empty()) {
    if (o.in_pattern.empty()) o.in_pattern = o.demo_dir + "/frame_%03d.pgm";
    if (o.out_pattern.empty()) o.out_pattern = o.demo_dir + "/mask_%03d.pgm";
    if (o.count < 0) o.count = 48;
  }
  if (o.in_pattern.empty() || o.out_pattern.empty())
    usage("--in and --out are required (or use --demo DIR)");
  return o;
}

std::string format_path(const std::string& pattern, int index) {
  char buf[1024];
  std::snprintf(buf, sizeof buf, pattern.c_str(), index);
  return buf;
}

void synthesize_demo(const Options& o) {
  std::filesystem::create_directories(o.demo_dir);
  mog::SceneConfig cfg;
  cfg.width = 512;
  cfg.height = 288;
  cfg.num_objects = 3;
  cfg.texture_fraction = 0.3;
  const mog::SyntheticScene scene{cfg};
  for (int t = 0; t < o.count; ++t)
    mog::write_pgm(format_path(o.in_pattern, o.start + t), scene.frame(t));
  std::printf("synthesized %d demo frames into %s\n", o.count,
              o.demo_dir.c_str());
}

mog::BackgroundSubtractor::Backend backend_from(const std::string& name) {
  using B = mog::BackgroundSubtractor::Backend;
  if (name == "gpu") return B::kGpuSim;
  if (name == "serial") return B::kCpuSerial;
  if (name == "simd") return B::kCpuSimd;
  if (name == "parallel") return B::kCpuParallel;
  usage(("unknown backend: " + name).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    if (!o.demo_dir.empty()) synthesize_demo(o);

    // Peek at the first frame for dimensions.
    const mog::FrameU8 first = mog::read_pgm(format_path(o.in_pattern,
                                                         o.start));
    std::printf("input: %dx%d, backend %s\n", first.width(), first.height(),
                o.backend.c_str());

    // Model persistence works through the serial engine directly (model
    // injection/extraction); everything else goes through the facade.
    const bool needs_serial_engine =
        !o.load_model_path.empty() || !o.save_model_path.empty();
    if (needs_serial_engine && o.backend != "serial")
      throw mog::Error{
          "--load-model/--save-model currently require --backend serial"};

    mog::BackgroundSubtractor::Config cfg;
    cfg.width = first.width();
    cfg.height = first.height();
    cfg.backend = backend_from(o.backend);
    cfg.precision = o.use_float ? mog::Precision::kFloat
                                : mog::Precision::kDouble;
    cfg.params.num_components = o.components;
    if (o.level < 'A' || o.level > 'F')
      throw mog::Error{"--level must be A..F"};
    cfg.opt_level = static_cast<mog::kernels::OptLevel>(o.level - 'A');
    if (o.tiled_group > 0) {
      cfg.tiled = true;
      cfg.opt_level = mog::kernels::OptLevel::kF;
      cfg.tiled_config.frame_group = o.tiled_group;
    }

    std::unique_ptr<mog::SerialMog<double>> serial_engine;
    std::unique_ptr<mog::BackgroundSubtractor> facade;
    if (needs_serial_engine) {
      serial_engine = std::make_unique<mog::SerialMog<double>>(
          cfg.width, cfg.height, cfg.params);
      if (!o.load_model_path.empty()) {
        serial_engine->model() =
            mog::load_model<double>(o.load_model_path, cfg.params);
        std::printf("warm-started from %s\n", o.load_model_path.c_str());
      }
    } else {
      facade = std::make_unique<mog::BackgroundSubtractor>(cfg);
    }

    mog::ValidationConfig vcfg;
    mog::FrameU8 frame = first, mask;
    std::vector<int> pending;
    int processed = 0, written = 0;

    auto emit = [&](int index, const mog::FrameU8& m) {
      const mog::FrameU8& final_mask =
          o.validate ? validate_foreground(m, vcfg) : m;
      mog::write_pgm(format_path(o.out_pattern, index), final_mask);
      ++written;
    };

    for (int t = o.start;; ++t) {
      if (o.count >= 0 && t >= o.start + o.count) break;
      if (t != o.start) {
        const std::string path = format_path(o.in_pattern, t);
        if (o.count < 0 && !std::filesystem::exists(path)) break;
        frame = mog::read_pgm(path);
      }
      ++processed;
      if (serial_engine) {
        serial_engine->apply(frame, mask);
        emit(t, mask);
      } else {
        pending.push_back(t);
        if (facade->apply(frame, mask)) {
          emit(pending.back(), mask);  // newest mask of the (possibly) group
          pending.clear();
        }
      }
    }
    if (facade) {
      std::vector<mog::FrameU8> rest;
      if (facade->flush(rest) > 0 && !pending.empty())
        emit(pending.back(), rest.back());
    }

    if (!o.background_path.empty()) {
      const mog::FrameU8 bg = serial_engine
                                  ? mog::to_u8(serial_engine->background())
                                  : facade->background();
      mog::write_pgm(o.background_path, bg);
      std::printf("background estimate -> %s\n", o.background_path.c_str());
    }
    if (!o.save_model_path.empty()) {
      if (serial_engine) {
        mog::save_model(o.save_model_path, serial_engine->model());
      } else {
        throw mog::Error{"--save-model currently requires --backend serial"};
      }
      std::printf("model -> %s\n", o.save_model_path.c_str());
    }

    std::printf("processed %d frames, wrote %d masks\n", processed, written);
    if (facade) {
      const auto profile = facade->profile();
      if (profile.available)
        std::printf("simulated GPU: %.2f ms/frame kernel, occupancy %.0f%%\n",
                    1e3 * profile.kernel_timing.total_seconds,
                    100.0 * profile.occupancy.achieved);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mogcli: %s\n", e.what());
    return 1;
  }
}
