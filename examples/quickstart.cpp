// Quickstart: subtract the background from a synthetic surveillance
// sequence with the fully-optimized GPU pipeline (level F) and inspect the
// profiler. ~30 lines of actual API use.
//
//   $ ./examples/quickstart [output_dir]
//
// Writes frame / foreground-mask / background-estimate PGMs for the last
// frame and prints the modeled GPU performance.
#include <cstdio>
#include <string>

#include "mog/core/background_subtractor.hpp"
#include "mog/video/pnm_io.hpp"
#include "mog/video/scene.hpp"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A deterministic synthetic scene stands in for a camera.
  mog::SceneConfig scene_cfg;
  scene_cfg.width = 640;
  scene_cfg.height = 360;
  scene_cfg.num_objects = 3;
  const mog::SyntheticScene camera{scene_cfg};

  // Background subtractor: simulated-GPU backend, optimization level F.
  mog::BackgroundSubtractor::Config cfg;
  cfg.width = scene_cfg.width;
  cfg.height = scene_cfg.height;
  mog::BackgroundSubtractor bgs{cfg};

  mog::FrameU8 frame, mask;
  constexpr int kFrames = 40;
  for (int t = 0; t < kFrames; ++t) {
    frame = camera.frame(t);
    bgs.apply(frame, mask);
  }

  std::size_t fg_pixels = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) fg_pixels += (mask[i] != 0);
  std::printf("processed %d frames at %dx%d; last mask: %.2f%% foreground\n",
              kFrames, cfg.width, cfg.height,
              100.0 * static_cast<double>(fg_pixels) /
                  static_cast<double>(mask.size()));

  mog::write_pgm(out_dir + "/quickstart_frame.pgm", frame);
  mog::write_pgm(out_dir + "/quickstart_mask.pgm", mask);
  mog::write_pgm(out_dir + "/quickstart_background.pgm", bgs.background());
  std::printf("wrote quickstart_{frame,mask,background}.pgm to %s\n",
              out_dir.c_str());

  const auto profile = bgs.profile();
  if (profile.available) {
    std::printf(
        "simulated GPU: %.2f ms/frame kernel, occupancy %.0f%%, branch "
        "efficiency %.1f%%, memory efficiency %.1f%%\n",
        1e3 * profile.kernel_timing.total_seconds,
        100.0 * profile.occupancy.achieved,
        100.0 * profile.per_frame.branch_efficiency(),
        100.0 * profile.per_frame.memory_access_efficiency());
  }
  return 0;
}
