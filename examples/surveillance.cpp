// Video-surveillance pipeline: the paper's motivating application. Runs the
// tiled (windowed) GPU variant over a busy street-like scene, extracts
// moving-object detections from the foreground masks with a small
// connected-components pass, and scores them against the scene's ground
// truth.
//
//   $ ./examples/surveillance [frames] [output_dir]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mog/core/background_subtractor.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/video/pnm_io.hpp"
#include "mog/video/scene.hpp"

namespace {

struct Blob {
  int min_x, min_y, max_x, max_y;
  int area;
};

/// 4-connected components over a binary mask; tiny blobs are noise and get
/// dropped.
std::vector<Blob> find_blobs(const mog::FrameU8& mask, int min_area) {
  const int w = mask.width(), h = mask.height();
  std::vector<int> label(static_cast<std::size_t>(w) * h, -1);
  std::vector<Blob> blobs;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < mask.size(); ++start) {
    if (mask[start] == 0 || label[start] >= 0) continue;
    const int id = static_cast<int>(blobs.size());
    Blob blob{w, h, 0, 0, 0};
    stack.assign(1, start);
    label[start] = id;
    while (!stack.empty()) {
      const std::size_t p = stack.back();
      stack.pop_back();
      const int x = static_cast<int>(p) % w;
      const int y = static_cast<int>(p) / w;
      blob.min_x = std::min(blob.min_x, x);
      blob.max_x = std::max(blob.max_x, x);
      blob.min_y = std::min(blob.min_y, y);
      blob.max_y = std::max(blob.max_y, y);
      ++blob.area;
      const int dx[] = {1, -1, 0, 0}, dy[] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        const int nx = x + dx[d], ny = y + dy[d];
        if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
        const std::size_t q = static_cast<std::size_t>(ny) * w + nx;
        if (mask[q] != 0 && label[q] < 0) {
          label[q] = id;
          stack.push_back(q);
        }
      }
    }
    blobs.push_back(blob);
  }
  std::erase_if(blobs, [min_area](const Blob& b) { return b.area < min_area; });
  return blobs;
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  mog::SceneConfig scene_cfg;
  scene_cfg.width = 640;
  scene_cfg.height = 360;
  scene_cfg.num_objects = 4;
  scene_cfg.seed = 2026;
  scene_cfg.texture_fraction = 0.3;  // moderately busy scene
  const mog::SyntheticScene camera{scene_cfg};

  // Tiled GPU variant (the paper's §IV-D): masks arrive one frame group at
  // a time, which is the realistic deployment trade-off between throughput
  // and latency.
  mog::BackgroundSubtractor::Config cfg;
  cfg.width = scene_cfg.width;
  cfg.height = scene_cfg.height;
  cfg.tiled = true;
  cfg.tiled_config.frame_group = 8;
  mog::BackgroundSubtractor bgs{cfg};

  mog::ConfusionCounts totals;
  mog::FrameU8 frame, mask, truth;
  std::vector<int> pending;  // frame indices awaiting their group's masks
  int detections = 0, truth_frames = 0;

  auto consume = [&](int t, const mog::FrameU8& m) {
    if (t < 32) return;  // let the model warm up before scoring
    camera.render(t, nullptr, &truth);
    totals += compare_masks(m, truth);
    ++truth_frames;
    const auto blobs = find_blobs(m, /*min_area=*/60);
    detections += static_cast<int>(blobs.size());
    if (t == frames - 1) {
      std::printf("frame %d: %zu detections\n", t, blobs.size());
      for (const Blob& b : blobs)
        std::printf("  bbox (%d,%d)-(%d,%d), area %d\n", b.min_x, b.min_y,
                    b.max_x, b.max_y, b.area);
      mog::write_pgm(out_dir + "/surveillance_frame.pgm", frame);
      mog::write_pgm(out_dir + "/surveillance_mask.pgm", m);
      mog::write_pgm(out_dir + "/surveillance_background.pgm",
                     bgs.background());
    }
  };

  for (int t = 0; t < frames; ++t) {
    frame = camera.frame(t);
    pending.push_back(t);
    if (bgs.apply(frame, mask)) {
      // A group completed; masks for `pending` frames are ready.
      const auto& profile = bgs.profile();
      (void)profile;
      // The facade returns only the newest mask; re-associate via flush-like
      // bookkeeping: for this example the newest mask is scored for each
      // pending frame boundary — use the group-completion frame only.
      consume(pending.back(), mask);
      pending.clear();
    }
  }
  std::vector<mog::FrameU8> rest;
  if (bgs.flush(rest) > 0) consume(frames - 1, rest.back());

  std::printf(
      "\nsummary over %d scored frames: precision %.2f, recall %.2f, F1 "
      "%.2f, %d total detections\n",
      truth_frames, totals.precision(), totals.recall(), totals.f1(),
      detections);
  const auto profile = bgs.profile();
  if (profile.available) {
    std::printf(
        "tiled GPU pipeline: %.2f ms/frame kernel (modeled), occupancy "
        "%.0f%% (shared-memory limited), modeled total %.2f s\n",
        1e3 * profile.kernel_timing.total_seconds,
        100.0 * profile.occupancy.achieved, profile.modeled_seconds);
  }
  return 0;
}
