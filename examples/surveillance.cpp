// Video-surveillance pipeline: the paper's motivating application, run the
// way a deployment actually has to run — behind the fault-tolerant wrapper.
// A seeded fault injector corrupts frames at the video layer and fails DMA
// transfers and kernel launches on the simulated device; the resilient
// pipeline retries, salvages, checkpoints, and (if the device keeps dying)
// degrades tiled -> direct -> CPU while masks keep flowing. Detections are
// extracted from the masks with a small connected-components pass and scored
// against the scene's ground truth.
//
//   $ ./examples/surveillance [frames] [output_dir] [fault_rate]
//
// `fault_rate` (default 0.02) drives the transfer/launch fault probability;
// pass 0 for a fault-free run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mog/fault/fault_injector.hpp"
#include "mog/fault/resilient_pipeline.hpp"
#include "mog/metrics/confusion.hpp"
#include "mog/obs/log.hpp"
#include "mog/telemetry/telemetry.hpp"
#include "mog/video/pnm_io.hpp"
#include "mog/video/scene.hpp"

namespace {

struct Blob {
  int min_x, min_y, max_x, max_y;
  int area;
};

/// 4-connected components over a binary mask; tiny blobs are noise and get
/// dropped.
std::vector<Blob> find_blobs(const mog::FrameU8& mask, int min_area) {
  const int w = mask.width(), h = mask.height();
  std::vector<int> label(static_cast<std::size_t>(w) * h, -1);
  std::vector<Blob> blobs;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < mask.size(); ++start) {
    if (mask[start] == 0 || label[start] >= 0) continue;
    const int id = static_cast<int>(blobs.size());
    Blob blob{w, h, 0, 0, 0};
    stack.assign(1, start);
    label[start] = id;
    while (!stack.empty()) {
      const std::size_t p = stack.back();
      stack.pop_back();
      const int x = static_cast<int>(p) % w;
      const int y = static_cast<int>(p) / w;
      blob.min_x = std::min(blob.min_x, x);
      blob.max_x = std::max(blob.max_x, x);
      blob.min_y = std::min(blob.min_y, y);
      blob.max_y = std::max(blob.max_y, y);
      ++blob.area;
      const int dx[] = {1, -1, 0, 0}, dy[] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        const int nx = x + dx[d], ny = y + dy[d];
        if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
        const std::size_t q = static_cast<std::size_t>(ny) * w + nx;
        if (mask[q] != 0 && label[q] < 0) {
          label[q] = id;
          stack.push_back(q);
        }
      }
    }
    blobs.push_back(blob);
  }
  std::erase_if(blobs, [min_area](const Blob& b) { return b.area < min_area; });
  return blobs;
}

}  // namespace

int main(int argc, char** argv) try {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::string out_dir = argc > 2 ? argv[2] : ".";
  const double fault_rate = argc > 3 ? std::atof(argv[3]) : 0.02;
  if (frames <= 0) {
    std::fprintf(stderr,
                 "usage: surveillance [frames>0] [output_dir] [fault_rate]\n");
    return 2;
  }

  mog::SceneConfig scene_cfg;
  scene_cfg.width = 640;
  scene_cfg.height = 360;
  scene_cfg.num_objects = 4;
  scene_cfg.seed = 2026;
  scene_cfg.texture_fraction = 0.3;  // moderately busy scene
  const mog::SyntheticScene camera{scene_cfg};

  // Tiled GPU variant (the paper's §IV-D): masks arrive one frame group at
  // a time, which is the realistic deployment trade-off between throughput
  // and latency.
  mog::fault::ResilientPipeline<double>::GpuConfig gpu_cfg;
  gpu_cfg.width = scene_cfg.width;
  gpu_cfg.height = scene_cfg.height;
  gpu_cfg.tiled = true;
  gpu_cfg.tiled_config.frame_group = 8;

  // Deterministic fault model: DMA transfers and launches fail at
  // fault_rate, frames arrive corrupted or not at all at half that rate.
  mog::fault::FaultConfig fault_cfg;
  fault_cfg.seed = 0xbad0cafe;
  fault_cfg.upload_fault_prob = fault_rate;
  fault_cfg.download_fault_prob = fault_rate;
  fault_cfg.launch_fault_prob = fault_rate / 2;
  fault_cfg.frame_corrupt_prob = fault_rate / 2;
  fault_cfg.frame_drop_prob = fault_rate / 4;
  auto injector = std::make_shared<mog::fault::FaultInjector>(fault_cfg);

  // Telemetry: trace every upload/kernel/download span plus the recovery
  // events, and aggregate per-launch profiler counters. Installed before the
  // pipeline so its device picks up the counter sink at construction.
  mog::telemetry::TraceRecorder trace;
  mog::telemetry::CounterRegistry counters;
  mog::telemetry::set_tracer(&trace);
  mog::telemetry::set_counters(&counters);

  // Structured logs to stderr: the fault layer narrates every retry,
  // ladder step, and rollback as one JSON line per event.
  mog::obs::StderrSink log_sink;
  mog::obs::default_logger().add_sink(&log_sink);

  mog::fault::ResilienceConfig res_cfg;
  res_cfg.checkpoint_interval = 64;
  res_cfg.health_check_interval = 16;
  mog::fault::ResilientPipeline<double> pipeline{gpu_cfg, res_cfg, injector};

  mog::ConfusionCounts totals;
  mog::FrameU8 frame, mask, truth;
  int detections = 0, truth_frames = 0, last_scored = -1;

  auto consume = [&](int t, const mog::FrameU8& m) {
    if (t < 32) return;  // let the model warm up before scoring
    camera.render(t, nullptr, &truth);
    totals += compare_masks(m, truth);
    ++truth_frames;
    // Qualified: ADL would also find mog::find_blobs (a different helper).
    const auto blobs = ::find_blobs(m, /*min_area=*/60);
    detections += static_cast<int>(blobs.size());
    if (t == frames - 1) {
      std::printf("frame %d: %zu detections\n", t, blobs.size());
      for (const Blob& b : blobs)
        std::printf("  bbox (%d,%d)-(%d,%d), area %d\n", b.min_x, b.min_y,
                    b.max_x, b.max_y, b.area);
      mog::write_pgm(out_dir + "/surveillance_frame.pgm", frame);
      mog::write_pgm(out_dir + "/surveillance_mask.pgm", m);
      mog::write_pgm(out_dir + "/surveillance_background.pgm",
                     pipeline.background());
    }
    last_scored = t;
  };

  for (int t = 0; t < frames; ++t) {
    frame = camera.frame(t);
    // Never throws on an injected fault: the wrapper retries, reuses the
    // last mask, or steps down the degradation ladder.
    if (pipeline.process(frame, mask)) consume(t, mask);
  }
  std::vector<mog::FrameU8> rest;
  if (pipeline.flush(rest) > 0 && last_scored < frames - 1)
    consume(frames - 1, rest.back());

  std::printf(
      "\nsummary over %d scored frames: precision %.2f, recall %.2f, F1 "
      "%.2f, %d total detections\n",
      truth_frames, totals.precision(), totals.recall(), totals.f1(),
      detections);
  std::printf("execution tier at exit: %s\n",
              mog::fault::to_string(pipeline.tier()));
  std::printf("recovery: %s\n", pipeline.recovery_stats().summary().c_str());
  const auto* gpu = pipeline.gpu_pipeline();
  if (gpu != nullptr && gpu->frames_processed() > 0) {
    std::printf(
        "tiled GPU pipeline: %.2f ms/frame kernel (modeled), occupancy "
        "%.0f%%, modeled total %.2f s\n",
        1e3 * gpu->per_frame_kernel_timing().total_seconds,
        100.0 * gpu->occupancy().achieved, gpu->modeled_seconds());
  }

  const std::string trace_path = out_dir + "/surveillance_trace.json";
  trace.write(trace_path);
  std::printf("\ntelemetry: %zu trace events -> %s (open in ui.perfetto.dev "
              "or chrome://tracing)\n",
              trace.size(), trace_path.c_str());
  std::printf("%s", counters.summary(static_cast<std::uint64_t>(
                                         truth_frames)).c_str());
  const std::string counters_path = out_dir + "/surveillance_counters.json";
  mog::telemetry::write_json_file(counters_path, counters.to_json());
  std::printf("\ncounter dump -> %s (digest with `mogprof %s`)\n",
              counters_path.c_str(), counters_path.c_str());
  mog::obs::default_logger().remove_sink(&log_sink);
  mog::telemetry::set_tracer(nullptr);
  mog::telemetry::set_counters(nullptr);
  return 0;
} catch (const mog::Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
