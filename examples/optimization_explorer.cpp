// Optimization explorer: the paper's methodology packaged as a tool. Steps
// through optimization levels A..F (plus the tiled variant) on a scene you
// configure from the command line, printing for each step the profiler
// metrics the paper uses to explain *why* the step helps — and the modeled
// full-scale speedup.
//
//   $ ./examples/optimization_explorer [width] [height] [frames]
#include <cstdio>
#include <cstdlib>

#include "mog/kernels/opt_level.hpp"
#include "mog/pipeline/experiment.hpp"

int main(int argc, char** argv) {
  mog::ExperimentConfig cfg;
  cfg.width = argc > 1 ? std::atoi(argv[1]) : 512;
  cfg.height = argc > 2 ? std::atoi(argv[2]) : 288;
  cfg.frames = argc > 3 ? std::atoi(argv[3]) : 16;
  cfg.warmup_frames = cfg.frames / 4;

  std::printf("workload: %dx%d, %d frames, %d Gaussians, double precision\n",
              cfg.width, cfg.height, cfg.frames, cfg.params.num_components);
  std::printf(
      "counters extrapolate to the paper's 450 full-HD frames (227.3 s on "
      "the reference CPU)\n\n");
  std::printf("%-28s %9s %10s %8s %8s %8s %8s\n", "configuration", "speedup",
              "kernel_ms", "occup%", "br_eff%", "mem_eff%", "regs");

  auto report = [](const char* name, const mog::ExperimentResult& r) {
    const double ratio = (1920.0 * 1080.0) /
                         (static_cast<double>(r.config.width) *
                          r.config.height);
    std::printf("%-28s %8.1fx %10.2f %8.1f %8.1f %8.1f %8d\n", name,
                r.speedup, 1e3 * r.kernel_timing.total_seconds * ratio,
                100.0 * r.occupancy.achieved,
                100.0 * r.per_frame.branch_efficiency(),
                100.0 * r.per_frame.memory_access_efficiency(),
                r.per_frame.regs_per_thread);
  };

  for (const auto level : mog::kernels::kAllLevels) {
    mog::ExperimentConfig c = cfg;
    c.level = level;
    char name[80];
    std::snprintf(name, sizeof name, "%s %s", mog::kernels::to_string(level),
                  mog::kernels::describe(level));
    report(name, run_gpu_experiment(c));
  }
  for (const int group : {1, 8}) {
    mog::ExperimentConfig c = cfg;
    c.tiled = true;
    c.tiled_config.frame_group = group;
    if (c.frames < 2 * group) c.frames = 2 * group;
    char name[80];
    std::snprintf(name, sizeof name, "tiled, frame group %d", group);
    report(name, run_gpu_experiment(c));
  }

  std::printf(
      "\nreading the table like the paper does:\n"
      "  A->B  coalescing: watch mem_eff%% and the kernel time collapse\n"
      "  B->C  overlap: same kernel, transfers hidden (speedup only)\n"
      "  C->D  no sort: fewer branches, fewer registers, higher occupancy\n"
      "  D->E  predication: br_eff%% and mem_eff%% approach 100\n"
      "  E->F  register diet: occupancy pays for the recomputation\n"
      "  tiled g=8: parameter traffic amortized across the frame group\n");
  return 0;
}
