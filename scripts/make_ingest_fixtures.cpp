// Fixture encoder for the ingestion front end.
//
//   $ make_ingest_fixtures --golden DIR [--frames N] [--width W] [--height H]
//   $ make_ingest_fixtures --corpus DIR
//
// --golden writes encoded golden files (Y4M mono, Y4M 4:2:0, MJPEG at two
// qualities) rendered from the deterministic video::Scene generator — the
// same frames the synthetic serving path consumes, so tests can assert that
// masks from the decoded path are bit-identical to the synthetic path.
//
// --corpus (re)generates the committed fuzz seed corpus under
// tests/fuzz/corpus/{y4m,jpeg,pnm}. Convention: ok_* must parse, bad_* must
// throw a typed error; neither may crash. The corpus is deterministic — no
// clocks, no RNG beyond the scene seed — so regeneration is reproducible.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mog/common/error.hpp"
#include "mog/common/strutil.hpp"
#include "mog/ingest/mjpeg.hpp"
#include "mog/ingest/y4m.hpp"
#include "mog/video/scene.hpp"

namespace {

namespace fs = std::filesystem;
using mog::FrameU8;

[[noreturn]] void usage(const std::string& why) {
  std::fprintf(stderr, "make_ingest_fixtures: %s\n", why.c_str());
  std::fprintf(stderr,
               "usage: make_ingest_fixtures --golden DIR [--frames N]\n"
               "                            [--width W] [--height H]\n"
               "       make_ingest_fixtures --corpus DIR\n");
  std::exit(2);
}

std::vector<FrameU8> scene_frames(int width, int height, int frames) {
  mog::SceneConfig sc = mog::SceneConfig::highway(width, height);
  mog::SyntheticScene scene{sc};
  std::vector<FrameU8> out;
  for (int t = 0; t < frames; ++t) out.push_back(scene.frame(t));
  return out;
}

void write_bytes(const fs::path& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out{path, std::ios::binary};
  MOG_CHECK(bool(out), "cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  MOG_CHECK(bool(out), "write failed: " + path.string());
  std::printf("  %s (%zu bytes)\n", path.string().c_str(), b.size());
}

void write_text(const fs::path& path, const std::string& s) {
  write_bytes(path, std::vector<std::uint8_t>{s.begin(), s.end()});
}

void write_y4m(const fs::path& path, const std::vector<FrameU8>& frames,
               mog::ingest::Y4mColorspace cs) {
  mog::ingest::Y4mHeader h;
  h.width = frames.front().width();
  h.height = frames.front().height();
  h.colorspace = cs;
  mog::ingest::Y4mWriter w{path.string(), h};
  for (const FrameU8& f : frames) w.append(f);
  w.close();
  std::printf("  %s (%ju bytes)\n", path.string().c_str(),
              static_cast<std::uintmax_t>(fs::file_size(path)));
}

void make_golden(const fs::path& dir, int width, int height, int frames) {
  fs::create_directories(dir);
  std::printf("golden fixtures (%dx%d, %d frames) -> %s\n", width, height,
              frames, dir.string().c_str());
  const std::vector<FrameU8> fr = scene_frames(width, height, frames);

  write_y4m(dir / "scene_mono.y4m", fr, mog::ingest::Y4mColorspace::kMono);
  write_y4m(dir / "scene_420.y4m", fr, mog::ingest::Y4mColorspace::k420);

  mog::ingest::JpegEncodeConfig q90;
  q90.quality = 90;
  write_bytes(dir / "scene_q90.mjpeg", mog::ingest::encode_mjpeg(fr, q90));
  mog::ingest::JpegEncodeConfig q50;
  q50.quality = 50;
  q50.restart_interval = 4;
  write_bytes(dir / "scene_q50_rst.mjpeg",
              mog::ingest::encode_mjpeg(fr, q50));
}

// --- fuzz seed corpus -------------------------------------------------------

void corpus_y4m(const fs::path& dir) {
  fs::create_directories(dir);
  const std::vector<FrameU8> fr = scene_frames(24, 16, 2);
  write_y4m(dir / "ok_mono.y4m", fr, mog::ingest::Y4mColorspace::kMono);
  write_y4m(dir / "ok_420.y4m", fr, mog::ingest::Y4mColorspace::k420);

  // Valid header with every optional tag the parser skips.
  std::string tagged = "YUV4MPEG2 W8 H4 F25:1 Ip A1:1 C420jpeg XYSCSS=420\n";
  for (int f = 0; f < 2; ++f) {
    tagged += "FRAME\n";
    tagged.append(8 * 4 + 2 * 4 * 2, static_cast<char>(0x80));
  }
  write_text(dir / "ok_tagged.y4m", tagged);
  // FRAME with parameters after the marker.
  std::string framep = "YUV4MPEG2 W4 H2 Cmono\nFRAME Ip\n";
  framep.append(8, static_cast<char>(0x40));
  write_text(dir / "ok_frame_params.y4m", framep);

  write_text(dir / "bad_magic.y4m", "JUV4MPEG2 W4 H4 Cmono\n");
  write_text(dir / "bad_missing_height.y4m", "YUV4MPEG2 W16 Cmono\nFRAME\n");
  write_text(dir / "bad_dims_bomb.y4m",
             "YUV4MPEG2 W999999 H999999 Cmono\nFRAME\n");
  write_text(dir / "bad_odd_420.y4m", "YUV4MPEG2 W5 H4 C420\nFRAME\n");
  write_text(dir / "bad_colorspace.y4m", "YUV4MPEG2 W4 H4 C444\nFRAME\n");
  write_text(dir / "bad_frame_marker.y4m",
             "YUV4MPEG2 W4 H2 Cmono\nFRAMA\nXXXXXXXX");
  std::string trunc = "YUV4MPEG2 W4 H2 Cmono\nFRAME\n";
  trunc.append(3, 'x');  // promises 8 luma bytes, delivers 3
  write_text(dir / "bad_truncated_frame.y4m", trunc);
  write_text(dir / "bad_zero_width.y4m", "YUV4MPEG2 W0 H4 Cmono\nFRAME\n");
}

void corpus_jpeg(const fs::path& dir) {
  fs::create_directories(dir);
  const std::vector<FrameU8> fr = scene_frames(24, 16, 1);

  mog::ingest::JpegEncodeConfig cfg;
  cfg.quality = 90;
  write_bytes(dir / "ok_q90.jpg", encode_jpeg_gray(fr[0], cfg));
  cfg.quality = 25;
  write_bytes(dir / "ok_q25.jpg", encode_jpeg_gray(fr[0], cfg));
  cfg.quality = 90;
  cfg.restart_interval = 2;
  write_bytes(dir / "ok_restart.jpg", encode_jpeg_gray(fr[0], cfg));
  cfg.restart_interval = 0;
  cfg.ycbcr420 = true;
  write_bytes(dir / "ok_ycbcr420.jpg", encode_jpeg_gray(fr[0], cfg));

  cfg = {};
  const std::vector<std::uint8_t> good = encode_jpeg_gray(fr[0], cfg);

  // Truncations at structurally interesting depths.
  write_bytes(dir / "bad_soi_only.jpg", {0xFF, 0xD8});
  write_bytes(dir / "bad_trunc_half.jpg",
              {good.begin(),
               good.begin() + static_cast<std::ptrdiff_t>(good.size() / 2)});
  write_bytes(dir / "bad_no_eoi.jpg", {good.begin(), good.end() - 2});

  write_bytes(dir / "bad_no_soi.jpg", {0x00, 0x01, 0x02, 0x03});

  // Oversubscribed Huffman table: 17 codes of length 1.
  std::vector<std::uint8_t> bad_huff = good;
  for (std::size_t i = 0; i + 4 < bad_huff.size(); ++i) {
    if (bad_huff[i] == 0xFF && bad_huff[i + 1] == 0xC4) {
      bad_huff[i + 5] = 17;  // first BITS entry
      break;
    }
  }
  write_bytes(dir / "bad_oversubscribed_dht.jpg", bad_huff);

  // SOF claiming bomb dimensions (patch height/width fields of SOF0).
  std::vector<std::uint8_t> bomb = good;
  for (std::size_t i = 0; i + 9 < bomb.size(); ++i) {
    if (bomb[i] == 0xFF && bomb[i + 1] == 0xC0) {
      bomb[i + 5] = 0xFF;  // height hi
      bomb[i + 6] = 0xFF;  // height lo
      bomb[i + 7] = 0xFF;  // width hi
      bomb[i + 8] = 0xFF;  // width lo
      break;
    }
  }
  write_bytes(dir / "bad_dims_bomb.jpg", bomb);

  // Progressive SOF2 is out of scope: must be a typed kUnsupported.
  std::vector<std::uint8_t> prog = good;
  for (std::size_t i = 0; i + 1 < prog.size(); ++i) {
    if (prog[i] == 0xFF && prog[i + 1] == 0xC0) {
      prog[i + 1] = 0xC2;
      break;
    }
  }
  write_bytes(dir / "bad_progressive.jpg", prog);

  // Garbage after EOI.
  std::vector<std::uint8_t> trail = good;
  trail.insert(trail.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  write_bytes(dir / "bad_trailing_garbage.jpg", trail);

  // Corrupt entropy data: flip bytes mid-scan.
  std::vector<std::uint8_t> noisy = good;
  for (std::size_t i = noisy.size() - 12; i < noisy.size() - 4; ++i)
    noisy[i] = static_cast<std::uint8_t>(noisy[i] ^ 0x5A);
  write_bytes(dir / "bad_corrupt_scan.jpg", noisy);
}

void corpus_pnm(const fs::path& dir) {
  fs::create_directories(dir);
  // 2x2 image "ABCD" — matches the historical inline test bytes.
  write_text(dir / "ok_basic.pgm", "P5\n2 2\n255\nABCD");
  write_text(dir / "ok_comment.pgm", "P5\n# a comment\n2 2\n255\nABCD");
  write_text(dir / "ok_maxval15.pgm",
             std::string{"P5\n2 2\n15\n"} +
                 std::string{{0, 5, 10, 15}});
  write_text(dir / "ok_crlf.pgm", "P5\r\n2 2\r\n255\r\nABCD");

  write_text(dir / "bad_garbage.pgm", "NOT A PGM");
  write_text(dir / "bad_alpha_width.pgm", "P5\nabc 10\n255\nx");
  write_text(dir / "bad_negative_width.pgm", "P5\n-3 10\n255\nx");
  write_text(dir / "bad_overflow_width.pgm",
             "P5\n99999999999999999999 4\n255\nx");
  write_text(dir / "bad_dims_bomb.pgm", "P5\n20000 2\n255\nx");
  write_text(dir / "bad_maxval_zero.pgm", "P5\n2 2\n0\nABCD");
  write_text(dir / "bad_maxval_16bit.pgm", "P5\n2 2\n65535\nABCD");
  write_text(dir / "bad_no_sep_after_maxval.pgm", "P5\n2 2\n255");
  write_text(dir / "bad_sep_x_after_maxval.pgm", "P5\n2 2\n255XABCD");
  write_text(dir / "bad_fused_magic.pgm", "P51 1\n255\nA");
  write_text(dir / "bad_truncated_payload.pgm", "P5\n10 10\n255\nabc");
}

}  // namespace

int main(int argc, char** argv) try {
  std::string golden_dir;
  std::string corpus_dir;
  int frames = 8, width = 96, height = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage(std::string{what} + " needs a value");
      return argv[++i];
    };
    if (arg == "--golden")
      golden_dir = need("--golden");
    else if (arg == "--corpus")
      corpus_dir = need("--corpus");
    else if (arg == "--frames")
      frames = mog::parse_int(need("--frames"), 1, 1 << 12, "--frames");
    else if (arg == "--width")
      width = mog::parse_int(need("--width"), 16, 4096, "--width");
    else if (arg == "--height")
      height = mog::parse_int(need("--height"), 16, 4096, "--height");
    else
      usage("unknown flag " + arg);
  }
  if (golden_dir.empty() && corpus_dir.empty())
    usage("need --golden DIR and/or --corpus DIR");

  if (!golden_dir.empty()) make_golden(golden_dir, width, height, frames);
  if (!corpus_dir.empty()) {
    std::printf("fuzz seed corpus -> %s\n", corpus_dir.c_str());
    corpus_y4m(fs::path{corpus_dir} / "y4m");
    corpus_jpeg(fs::path{corpus_dir} / "jpeg");
    corpus_pnm(fs::path{corpus_dir} / "pnm");
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "make_ingest_fixtures: %s\n", e.what());
  return 1;
}
