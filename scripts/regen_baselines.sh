#!/usr/bin/env bash
# Regenerate the checked-in bench-smoke baselines after an intentional model
# change. Run from the repo root with an up-to-date build tree:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
#   cmake --build build -j
#   scripts/regen_baselines.sh [build_dir]
#
# The workload must stay in sync with the bench-smoke tests registered in
# bench/CMakeLists.txt (192x108, 12 frames) — the gate compares like for
# like. Review the resulting diff before committing: every changed metric is
# a model change you are consciously accepting.
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

export MOG_BENCH_WIDTH=192
export MOG_BENCH_HEIGHT=108
export MOG_BENCH_FRAMES=12
export MOG_BENCH_REPORT_DIR="$repo_root/bench/baselines"

for bench in bench_fig8_speedup bench_fig10_tiled bench_serve bench_ingest; do
  echo "== $bench =="
  "$build_dir/bench/$bench" > /dev/null
done

echo "baselines written to $MOG_BENCH_REPORT_DIR:"
git -C "$repo_root" diff --stat -- bench/baselines
