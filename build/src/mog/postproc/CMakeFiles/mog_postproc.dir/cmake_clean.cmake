file(REMOVE_RECURSE
  "CMakeFiles/mog_postproc.dir/components.cpp.o"
  "CMakeFiles/mog_postproc.dir/components.cpp.o.d"
  "CMakeFiles/mog_postproc.dir/morphology.cpp.o"
  "CMakeFiles/mog_postproc.dir/morphology.cpp.o.d"
  "CMakeFiles/mog_postproc.dir/validation.cpp.o"
  "CMakeFiles/mog_postproc.dir/validation.cpp.o.d"
  "libmog_postproc.a"
  "libmog_postproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
