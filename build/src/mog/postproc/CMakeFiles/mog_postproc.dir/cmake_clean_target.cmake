file(REMOVE_RECURSE
  "libmog_postproc.a"
)
