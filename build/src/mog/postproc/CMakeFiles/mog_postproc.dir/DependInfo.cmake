
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mog/postproc/components.cpp" "src/mog/postproc/CMakeFiles/mog_postproc.dir/components.cpp.o" "gcc" "src/mog/postproc/CMakeFiles/mog_postproc.dir/components.cpp.o.d"
  "/root/repo/src/mog/postproc/morphology.cpp" "src/mog/postproc/CMakeFiles/mog_postproc.dir/morphology.cpp.o" "gcc" "src/mog/postproc/CMakeFiles/mog_postproc.dir/morphology.cpp.o.d"
  "/root/repo/src/mog/postproc/validation.cpp" "src/mog/postproc/CMakeFiles/mog_postproc.dir/validation.cpp.o" "gcc" "src/mog/postproc/CMakeFiles/mog_postproc.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mog/common/CMakeFiles/mog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
