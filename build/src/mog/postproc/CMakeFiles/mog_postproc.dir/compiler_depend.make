# Empty compiler generated dependencies file for mog_postproc.
# This may be replaced when dependencies are built.
