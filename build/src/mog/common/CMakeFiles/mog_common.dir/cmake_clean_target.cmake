file(REMOVE_RECURSE
  "libmog_common.a"
)
