file(REMOVE_RECURSE
  "CMakeFiles/mog_common.dir/rng.cpp.o"
  "CMakeFiles/mog_common.dir/rng.cpp.o.d"
  "CMakeFiles/mog_common.dir/strutil.cpp.o"
  "CMakeFiles/mog_common.dir/strutil.cpp.o.d"
  "libmog_common.a"
  "libmog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
