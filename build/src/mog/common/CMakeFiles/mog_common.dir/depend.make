# Empty dependencies file for mog_common.
# This may be replaced when dependencies are built.
