# Empty compiler generated dependencies file for mog_kernels.
# This may be replaced when dependencies are built.
