
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mog/kernels/adaptive_kernel.cpp" "src/mog/kernels/CMakeFiles/mog_kernels.dir/adaptive_kernel.cpp.o" "gcc" "src/mog/kernels/CMakeFiles/mog_kernels.dir/adaptive_kernel.cpp.o.d"
  "/root/repo/src/mog/kernels/mog_kernels.cpp" "src/mog/kernels/CMakeFiles/mog_kernels.dir/mog_kernels.cpp.o" "gcc" "src/mog/kernels/CMakeFiles/mog_kernels.dir/mog_kernels.cpp.o.d"
  "/root/repo/src/mog/kernels/tiled_kernel.cpp" "src/mog/kernels/CMakeFiles/mog_kernels.dir/tiled_kernel.cpp.o" "gcc" "src/mog/kernels/CMakeFiles/mog_kernels.dir/tiled_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mog/gpusim/CMakeFiles/mog_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/mog/cpu/CMakeFiles/mog_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mog/common/CMakeFiles/mog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
