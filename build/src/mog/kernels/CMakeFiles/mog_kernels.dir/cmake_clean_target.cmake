file(REMOVE_RECURSE
  "libmog_kernels.a"
)
