file(REMOVE_RECURSE
  "CMakeFiles/mog_kernels.dir/adaptive_kernel.cpp.o"
  "CMakeFiles/mog_kernels.dir/adaptive_kernel.cpp.o.d"
  "CMakeFiles/mog_kernels.dir/mog_kernels.cpp.o"
  "CMakeFiles/mog_kernels.dir/mog_kernels.cpp.o.d"
  "CMakeFiles/mog_kernels.dir/tiled_kernel.cpp.o"
  "CMakeFiles/mog_kernels.dir/tiled_kernel.cpp.o.d"
  "libmog_kernels.a"
  "libmog_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
