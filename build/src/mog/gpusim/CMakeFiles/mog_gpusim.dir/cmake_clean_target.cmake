file(REMOVE_RECURSE
  "libmog_gpusim.a"
)
