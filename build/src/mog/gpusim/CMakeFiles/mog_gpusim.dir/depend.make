# Empty dependencies file for mog_gpusim.
# This may be replaced when dependencies are built.
