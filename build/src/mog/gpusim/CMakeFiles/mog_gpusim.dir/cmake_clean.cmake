file(REMOVE_RECURSE
  "CMakeFiles/mog_gpusim.dir/coalescer.cpp.o"
  "CMakeFiles/mog_gpusim.dir/coalescer.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/device_memory.cpp.o"
  "CMakeFiles/mog_gpusim.dir/device_memory.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/mog_gpusim.dir/device_spec.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/kernel_launch.cpp.o"
  "CMakeFiles/mog_gpusim.dir/kernel_launch.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/mog_gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/stream_sim.cpp.o"
  "CMakeFiles/mog_gpusim.dir/stream_sim.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/timing_model.cpp.o"
  "CMakeFiles/mog_gpusim.dir/timing_model.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/transfer_model.cpp.o"
  "CMakeFiles/mog_gpusim.dir/transfer_model.cpp.o.d"
  "CMakeFiles/mog_gpusim.dir/warp.cpp.o"
  "CMakeFiles/mog_gpusim.dir/warp.cpp.o.d"
  "libmog_gpusim.a"
  "libmog_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
