
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mog/gpusim/coalescer.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/coalescer.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/coalescer.cpp.o.d"
  "/root/repo/src/mog/gpusim/device_memory.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/device_memory.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/device_memory.cpp.o.d"
  "/root/repo/src/mog/gpusim/device_spec.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/device_spec.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/device_spec.cpp.o.d"
  "/root/repo/src/mog/gpusim/kernel_launch.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/kernel_launch.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/kernel_launch.cpp.o.d"
  "/root/repo/src/mog/gpusim/occupancy.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/occupancy.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/mog/gpusim/stream_sim.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/stream_sim.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/stream_sim.cpp.o.d"
  "/root/repo/src/mog/gpusim/timing_model.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/timing_model.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/timing_model.cpp.o.d"
  "/root/repo/src/mog/gpusim/transfer_model.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/transfer_model.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/transfer_model.cpp.o.d"
  "/root/repo/src/mog/gpusim/warp.cpp" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/warp.cpp.o" "gcc" "src/mog/gpusim/CMakeFiles/mog_gpusim.dir/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mog/common/CMakeFiles/mog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
