# Empty dependencies file for mog_cpu.
# This may be replaced when dependencies are built.
