
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mog/cpu/adaptive_mog.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/adaptive_mog.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/adaptive_mog.cpp.o.d"
  "/root/repo/src/mog/cpu/cost_model.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/cost_model.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/mog/cpu/model_io.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/model_io.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/model_io.cpp.o.d"
  "/root/repo/src/mog/cpu/parallel_mog.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/parallel_mog.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/parallel_mog.cpp.o.d"
  "/root/repo/src/mog/cpu/serial_mog.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/serial_mog.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/serial_mog.cpp.o.d"
  "/root/repo/src/mog/cpu/simd_mog.cpp" "src/mog/cpu/CMakeFiles/mog_cpu.dir/simd_mog.cpp.o" "gcc" "src/mog/cpu/CMakeFiles/mog_cpu.dir/simd_mog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mog/common/CMakeFiles/mog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
