file(REMOVE_RECURSE
  "libmog_cpu.a"
)
