file(REMOVE_RECURSE
  "CMakeFiles/mog_cpu.dir/adaptive_mog.cpp.o"
  "CMakeFiles/mog_cpu.dir/adaptive_mog.cpp.o.d"
  "CMakeFiles/mog_cpu.dir/cost_model.cpp.o"
  "CMakeFiles/mog_cpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/mog_cpu.dir/model_io.cpp.o"
  "CMakeFiles/mog_cpu.dir/model_io.cpp.o.d"
  "CMakeFiles/mog_cpu.dir/parallel_mog.cpp.o"
  "CMakeFiles/mog_cpu.dir/parallel_mog.cpp.o.d"
  "CMakeFiles/mog_cpu.dir/serial_mog.cpp.o"
  "CMakeFiles/mog_cpu.dir/serial_mog.cpp.o.d"
  "CMakeFiles/mog_cpu.dir/simd_mog.cpp.o"
  "CMakeFiles/mog_cpu.dir/simd_mog.cpp.o.d"
  "libmog_cpu.a"
  "libmog_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
