file(REMOVE_RECURSE
  "CMakeFiles/mog_video.dir/pnm_io.cpp.o"
  "CMakeFiles/mog_video.dir/pnm_io.cpp.o.d"
  "CMakeFiles/mog_video.dir/scene.cpp.o"
  "CMakeFiles/mog_video.dir/scene.cpp.o.d"
  "libmog_video.a"
  "libmog_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
