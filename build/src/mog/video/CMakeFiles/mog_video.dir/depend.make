# Empty dependencies file for mog_video.
# This may be replaced when dependencies are built.
