file(REMOVE_RECURSE
  "libmog_video.a"
)
