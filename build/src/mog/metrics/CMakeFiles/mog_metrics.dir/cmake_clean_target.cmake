file(REMOVE_RECURSE
  "libmog_metrics.a"
)
