
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mog/metrics/confusion.cpp" "src/mog/metrics/CMakeFiles/mog_metrics.dir/confusion.cpp.o" "gcc" "src/mog/metrics/CMakeFiles/mog_metrics.dir/confusion.cpp.o.d"
  "/root/repo/src/mog/metrics/image_ops.cpp" "src/mog/metrics/CMakeFiles/mog_metrics.dir/image_ops.cpp.o" "gcc" "src/mog/metrics/CMakeFiles/mog_metrics.dir/image_ops.cpp.o.d"
  "/root/repo/src/mog/metrics/ssim.cpp" "src/mog/metrics/CMakeFiles/mog_metrics.dir/ssim.cpp.o" "gcc" "src/mog/metrics/CMakeFiles/mog_metrics.dir/ssim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mog/common/CMakeFiles/mog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
