file(REMOVE_RECURSE
  "CMakeFiles/mog_metrics.dir/confusion.cpp.o"
  "CMakeFiles/mog_metrics.dir/confusion.cpp.o.d"
  "CMakeFiles/mog_metrics.dir/image_ops.cpp.o"
  "CMakeFiles/mog_metrics.dir/image_ops.cpp.o.d"
  "CMakeFiles/mog_metrics.dir/ssim.cpp.o"
  "CMakeFiles/mog_metrics.dir/ssim.cpp.o.d"
  "libmog_metrics.a"
  "libmog_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
