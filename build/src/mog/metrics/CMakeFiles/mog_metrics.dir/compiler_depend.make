# Empty compiler generated dependencies file for mog_metrics.
# This may be replaced when dependencies are built.
