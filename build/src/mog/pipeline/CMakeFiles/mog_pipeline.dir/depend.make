# Empty dependencies file for mog_pipeline.
# This may be replaced when dependencies are built.
