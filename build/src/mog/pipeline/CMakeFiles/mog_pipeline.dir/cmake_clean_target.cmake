file(REMOVE_RECURSE
  "libmog_pipeline.a"
)
