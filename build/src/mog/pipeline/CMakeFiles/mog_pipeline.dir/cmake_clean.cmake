file(REMOVE_RECURSE
  "CMakeFiles/mog_pipeline.dir/experiment.cpp.o"
  "CMakeFiles/mog_pipeline.dir/experiment.cpp.o.d"
  "CMakeFiles/mog_pipeline.dir/gpu_pipeline.cpp.o"
  "CMakeFiles/mog_pipeline.dir/gpu_pipeline.cpp.o.d"
  "libmog_pipeline.a"
  "libmog_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
