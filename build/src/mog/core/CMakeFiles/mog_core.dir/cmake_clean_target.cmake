file(REMOVE_RECURSE
  "libmog_core.a"
)
