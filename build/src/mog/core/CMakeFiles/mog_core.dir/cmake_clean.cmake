file(REMOVE_RECURSE
  "CMakeFiles/mog_core.dir/background_subtractor.cpp.o"
  "CMakeFiles/mog_core.dir/background_subtractor.cpp.o.d"
  "libmog_core.a"
  "libmog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
