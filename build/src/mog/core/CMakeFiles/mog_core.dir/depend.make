# Empty dependencies file for mog_core.
# This may be replaced when dependencies are built.
