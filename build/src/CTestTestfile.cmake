# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("mog/common")
subdirs("mog/video")
subdirs("mog/cpu")
subdirs("mog/metrics")
subdirs("mog/postproc")
subdirs("mog/gpusim")
subdirs("mog/kernels")
subdirs("mog/pipeline")
subdirs("mog/core")
