# Empty dependencies file for optimization_explorer.
# This may be replaced when dependencies are built.
