file(REMOVE_RECURSE
  "CMakeFiles/optimization_explorer.dir/optimization_explorer.cpp.o"
  "CMakeFiles/optimization_explorer.dir/optimization_explorer.cpp.o.d"
  "optimization_explorer"
  "optimization_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
