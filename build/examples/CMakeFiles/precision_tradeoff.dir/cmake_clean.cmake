file(REMOVE_RECURSE
  "CMakeFiles/precision_tradeoff.dir/precision_tradeoff.cpp.o"
  "CMakeFiles/precision_tradeoff.dir/precision_tradeoff.cpp.o.d"
  "precision_tradeoff"
  "precision_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
