# Empty compiler generated dependencies file for precision_tradeoff.
# This may be replaced when dependencies are built.
