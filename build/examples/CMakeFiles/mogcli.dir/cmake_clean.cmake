file(REMOVE_RECURSE
  "CMakeFiles/mogcli.dir/mogcli.cpp.o"
  "CMakeFiles/mogcli.dir/mogcli.cpp.o.d"
  "mogcli"
  "mogcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mogcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
