# Empty dependencies file for mogcli.
# This may be replaced when dependencies are built.
