# Empty dependencies file for bench_future_embedded.
# This may be replaced when dependencies are built.
