file(REMOVE_RECURSE
  "CMakeFiles/bench_future_embedded.dir/bench_future_embedded.cpp.o"
  "CMakeFiles/bench_future_embedded.dir/bench_future_embedded.cpp.o.d"
  "bench_future_embedded"
  "bench_future_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
