file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_gaussians.dir/bench_fig11_gaussians.cpp.o"
  "CMakeFiles/bench_fig11_gaussians.dir/bench_fig11_gaussians.cpp.o.d"
  "bench_fig11_gaussians"
  "bench_fig11_gaussians.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_gaussians.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
