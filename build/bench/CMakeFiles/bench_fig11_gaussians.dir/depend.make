# Empty dependencies file for bench_fig11_gaussians.
# This may be replaced when dependencies are built.
