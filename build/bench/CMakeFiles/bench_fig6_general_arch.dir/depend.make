# Empty dependencies file for bench_fig6_general_arch.
# This may be replaced when dependencies are built.
