file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tiled.dir/bench_fig10_tiled.cpp.o"
  "CMakeFiles/bench_fig10_tiled.dir/bench_fig10_tiled.cpp.o.d"
  "bench_fig10_tiled"
  "bench_fig10_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
