file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hwconfig.dir/bench_table1_hwconfig.cpp.o"
  "CMakeFiles/bench_table1_hwconfig.dir/bench_table1_hwconfig.cpp.o.d"
  "bench_table1_hwconfig"
  "bench_table1_hwconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hwconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
