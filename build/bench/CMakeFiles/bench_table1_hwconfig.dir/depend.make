# Empty dependencies file for bench_table1_hwconfig.
# This may be replaced when dependencies are built.
