# Empty dependencies file for bench_fig7_algspec_arch.
# This may be replaced when dependencies are built.
