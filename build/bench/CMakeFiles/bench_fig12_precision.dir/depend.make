# Empty dependencies file for bench_fig12_precision.
# This may be replaced when dependencies are built.
