file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_precision.dir/bench_fig12_precision.cpp.o"
  "CMakeFiles/bench_fig12_precision.dir/bench_fig12_precision.cpp.o.d"
  "bench_fig12_precision"
  "bench_fig12_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
