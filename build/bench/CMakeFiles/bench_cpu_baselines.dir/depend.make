# Empty dependencies file for bench_cpu_baselines.
# This may be replaced when dependencies are built.
