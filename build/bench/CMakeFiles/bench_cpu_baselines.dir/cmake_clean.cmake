file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_baselines.dir/bench_cpu_baselines.cpp.o"
  "CMakeFiles/bench_cpu_baselines.dir/bench_cpu_baselines.cpp.o.d"
  "bench_cpu_baselines"
  "bench_cpu_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
