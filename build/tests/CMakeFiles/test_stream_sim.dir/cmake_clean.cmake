file(REMOVE_RECURSE
  "CMakeFiles/test_stream_sim.dir/test_stream_sim.cpp.o"
  "CMakeFiles/test_stream_sim.dir/test_stream_sim.cpp.o.d"
  "test_stream_sim"
  "test_stream_sim.pdb"
  "test_stream_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
