file(REMOVE_RECURSE
  "CMakeFiles/test_postproc.dir/test_postproc.cpp.o"
  "CMakeFiles/test_postproc.dir/test_postproc.cpp.o.d"
  "test_postproc"
  "test_postproc.pdb"
  "test_postproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
