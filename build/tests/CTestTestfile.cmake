# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_video[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_postproc[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_stream_sim[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_sweep[1]_include.cmake")
